#include "giop/engine.h"

#include "common/logging.h"

namespace cool::giop {

cdr::Decoder GiopClient::Reply::MakeResultsDecoder() const {
  cdr::Decoder dec = message.MakeBodyDecoder();
  // Re-parse past the reply header to the 8-aligned results; the offsets
  // were validated when the Reply was first parsed.
  (void)ParseReplyHeader(dec);
  return dec;
}

ByteBuffer GiopClient::BuildRequestMessage(
    const corba::OctetSeq& object_key, const std::string& operation,
    std::span<const corba::Octet> args_cdr,
    const std::vector<qos::QoSParameter>& qos_params, bool response_expected,
    corba::ULong request_id) const {
  RequestHeader header;
  header.request_id = request_id;
  header.response_expected = response_expected;
  header.object_key = object_key;
  header.operation = operation;
  header.requesting_principal = options_.principal;
  header.qos_params = qos_params;

  // Version switch (paper §4.2): the version field tells the receiver
  // whether standard GIOP or the QoS extension is used.
  const Version version = (options_.use_qos_extension && !qos_params.empty())
                              ? kGiopQos
                              : kGiop10;
  return BuildRequest(version, header, args_cdr, options_.order);
}

Result<ParsedMessage> GiopClient::NextMatchingReplyLocked(
    corba::ULong request_id, Duration timeout) {
  const TimePoint deadline = Now() + timeout;
  for (;;) {
    const Duration remaining = deadline - Now();
    if (remaining <= Duration::zero()) {
      return Status(DeadlineExceededError("no Reply for request " +
                                          std::to_string(request_id)));
    }
    COOL_ASSIGN_OR_RETURN(ByteBuffer raw, channel_->ReceiveMessage(remaining));
    COOL_ASSIGN_OR_RETURN(ParsedMessage msg, ParseMessage(raw.view()));
    if (msg.header.message_type == MsgType::kMessageError) {
      return Status(ProtocolError(
          "peer answered MessageError (GIOP version not accepted?)"));
    }
    if (msg.header.message_type == MsgType::kCloseConnection) {
      return Status(UnavailableError("peer closed the GIOP connection"));
    }
    if (msg.header.message_type != MsgType::kReply) {
      return Status(ProtocolError("unexpected GIOP message: " +
                                  std::string(MsgTypeName(
                                      msg.header.message_type))));
    }
    cdr::Decoder dec = msg.MakeBodyDecoder();
    COOL_ASSIGN_OR_RETURN(ReplyHeader reply, ParseReplyHeader(dec));
    if (reply.request_id == request_id) return msg;
    if (abandoned_.erase(reply.request_id) != 0) {
      continue;  // late reply for a cancelled request: discard
    }
    return Status(ProtocolError("Reply for unknown request id " +
                                std::to_string(reply.request_id)));
  }
}

Result<GiopClient::Reply> GiopClient::Invoke(
    const corba::OctetSeq& object_key, const std::string& operation,
    std::span<const corba::Octet> args_cdr,
    const std::vector<qos::QoSParameter>& qos_params, Duration timeout) {
  MutexLock lock(mu_);
  const corba::ULong id = next_request_id_++;
  const ByteBuffer msg = BuildRequestMessage(object_key, operation, args_cdr,
                                             qos_params, true, id);
  COOL_RETURN_IF_ERROR(channel_->SendMessage(msg.view()));
  COOL_ASSIGN_OR_RETURN(ParsedMessage parsed,
                        NextMatchingReplyLocked(id, timeout));
  Reply reply;
  cdr::Decoder dec = parsed.MakeBodyDecoder();
  COOL_ASSIGN_OR_RETURN(reply.header, ParseReplyHeader(dec));
  reply.message = std::move(parsed);
  reply.results_offset_ = dec.offset();
  return reply;
}

Status GiopClient::InvokeOneway(
    const corba::OctetSeq& object_key, const std::string& operation,
    std::span<const corba::Octet> args_cdr,
    const std::vector<qos::QoSParameter>& qos_params) {
  MutexLock lock(mu_);
  const corba::ULong id = next_request_id_++;
  const ByteBuffer msg = BuildRequestMessage(object_key, operation, args_cdr,
                                             qos_params, false, id);
  return channel_->SendMessage(msg.view());
}

Result<corba::ULong> GiopClient::InvokeDeferred(
    const corba::OctetSeq& object_key, const std::string& operation,
    std::span<const corba::Octet> args_cdr,
    const std::vector<qos::QoSParameter>& qos_params) {
  MutexLock lock(mu_);
  const corba::ULong id = next_request_id_++;
  const ByteBuffer msg = BuildRequestMessage(object_key, operation, args_cdr,
                                             qos_params, true, id);
  COOL_RETURN_IF_ERROR(channel_->SendMessage(msg.view()));
  return id;
}

Result<GiopClient::Reply> GiopClient::PollReply(corba::ULong request_id,
                                                Duration timeout) {
  MutexLock lock(mu_);
  if (abandoned_.contains(request_id)) {
    abandoned_.erase(request_id);
    return Status(CancelledError("request was cancelled"));
  }
  COOL_ASSIGN_OR_RETURN(ParsedMessage parsed,
                        NextMatchingReplyLocked(request_id, timeout));
  Reply reply;
  cdr::Decoder dec = parsed.MakeBodyDecoder();
  COOL_ASSIGN_OR_RETURN(reply.header, ParseReplyHeader(dec));
  reply.message = std::move(parsed);
  reply.results_offset_ = dec.offset();
  return reply;
}

Status GiopClient::Cancel(corba::ULong request_id) {
  MutexLock lock(mu_);
  CancelRequestHeader header{request_id};
  const ByteBuffer msg =
      BuildCancelRequest(kGiop10, header, options_.order);
  abandoned_.insert(request_id);
  return channel_->SendMessage(msg.view());
}

Result<LocateStatus> GiopClient::Locate(const corba::OctetSeq& object_key,
                                        Duration timeout) {
  MutexLock lock(mu_);
  const corba::ULong id = next_request_id_++;
  LocateRequestHeader header;
  header.request_id = id;
  header.object_key = object_key;
  const ByteBuffer msg = BuildLocateRequest(kGiop10, header, options_.order);
  COOL_RETURN_IF_ERROR(channel_->SendMessage(msg.view()));

  COOL_ASSIGN_OR_RETURN(ByteBuffer raw, channel_->ReceiveMessage(timeout));
  COOL_ASSIGN_OR_RETURN(ParsedMessage parsed, ParseMessage(raw.view()));
  if (parsed.header.message_type != MsgType::kLocateReply) {
    return Status(ProtocolError("expected LocateReply"));
  }
  cdr::Decoder dec = parsed.MakeBodyDecoder();
  COOL_ASSIGN_OR_RETURN(LocateReplyHeader reply, ParseLocateReplyHeader(dec));
  if (reply.request_id != id) {
    return Status(ProtocolError("LocateReply id mismatch"));
  }
  return reply.locate_status;
}

Status GiopClient::SendClose() {
  MutexLock lock(mu_);
  const ByteBuffer msg = BuildCloseConnection(kGiop10, options_.order);
  return channel_->SendMessage(msg.view());
}

// --- GiopServer ---------------------------------------------------------------

Status GiopServer::HandleRequest(const ParsedMessage& msg) {
  cdr::Decoder dec = msg.MakeBodyDecoder();
  auto header = ParseRequestHeader(dec, msg.header.version);
  if (!header.ok()) {
    (void)channel_->SendMessage(
        BuildMessageError(kGiop10, options_.order).view());
    return header.status();
  }
  if (cancelled_.erase(header->request_id) != 0) {
    // Cancelled before we started processing: GIOP allows dropping it.
    return Status::Ok();
  }

  DispatchResult result = dispatcher_(*header, dec);
  ++requests_served_;
  if (!header->response_expected) return Status::Ok();

  ReplyHeader reply;
  reply.request_id = header->request_id;
  reply.reply_status = result.status;
  // The Reply answers in the Request's GIOP version (a 9.9 conversation
  // stays 9.9; Reply's format is identical in both).
  const ByteBuffer out = BuildReply(msg.header.version, reply,
                                    result.body.view(), options_.order);
  return channel_->SendMessage(out.view());
}

Status GiopServer::ServeOne(Duration timeout) {
  auto raw = channel_->ReceiveMessage(timeout);
  if (!raw.ok()) return raw.status();

  auto parsed = ParseMessage(raw->view());
  if (!parsed.ok()) {
    (void)channel_->SendMessage(
        BuildMessageError(kGiop10, options_.order).view());
    return parsed.status();
  }
  const MessageHeader& h = parsed->header;

  // Version gate (paper §4.2, backwards compatibility): an unmodified GIOP
  // implementation rejects the 9.9 extension with MessageError.
  const bool version_ok =
      h.version == kGiop10 ||
      (h.version == kGiopQos && options_.accept_qos_extension);
  if (!version_ok) {
    COOL_LOG(kInfo, "giop") << "rejecting GIOP version "
                            << h.version.ToString();
    (void)channel_->SendMessage(
        BuildMessageError(kGiop10, options_.order).view());
    return Status::Ok();  // connection survives, per GIOP
  }

  switch (h.message_type) {
    case MsgType::kRequest:
      return HandleRequest(*parsed);
    case MsgType::kCancelRequest: {
      cdr::Decoder dec = parsed->MakeBodyDecoder();
      COOL_ASSIGN_OR_RETURN(CancelRequestHeader cancel,
                            ParseCancelRequestHeader(dec));
      cancelled_.insert(cancel.request_id);
      return Status::Ok();
    }
    case MsgType::kLocateRequest: {
      cdr::Decoder dec = parsed->MakeBodyDecoder();
      COOL_ASSIGN_OR_RETURN(LocateRequestHeader locate,
                            ParseLocateRequestHeader(dec));
      LocateReplyHeader reply;
      reply.request_id = locate.request_id;
      const bool here = locator_ ? locator_(locate.object_key) : false;
      reply.locate_status =
          here ? LocateStatus::kObjectHere : LocateStatus::kUnknownObject;
      return channel_->SendMessage(
          BuildLocateReply(h.version, reply, options_.order).view());
    }
    case MsgType::kCloseConnection:
      return CancelledError("peer closed connection");
    case MsgType::kMessageError:
      return ProtocolError("peer reported MessageError");
    case MsgType::kReply:
    case MsgType::kLocateReply:
      (void)channel_->SendMessage(
          BuildMessageError(kGiop10, options_.order).view());
      return ProtocolError("client-role message received by server");
  }
  return InternalError("unreachable GIOP message type");
}

Status GiopServer::Serve() {
  for (;;) {
    Status s = ServeOne(seconds(3600));
    if (s.ok()) continue;
    if (s.code() == ErrorCode::kProtocolError) {
      // Protocol damage is reported but the connection soldiers on, as
      // GIOP prescribes after MessageError.
      COOL_LOG(kWarn, "giop") << "protocol error on connection: " << s;
      continue;
    }
    return s;
  }
}

}  // namespace cool::giop
