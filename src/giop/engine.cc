#include "giop/engine.h"

#include "common/logging.h"

namespace cool::giop {

// --- GiopClient ---------------------------------------------------------------

cdr::Decoder GiopClient::Reply::MakeResultsDecoder() const {
  cdr::Decoder dec = message.MakeBodyDecoder();
  // Re-parse past the reply header to the 8-aligned results; the offsets
  // were validated when the Reply was first parsed.
  (void)ParseReplyHeader(dec);
  return dec;
}

GiopClient::~GiopClient() {
  if (reactor_registered_) {
    // Barrier: no demux callback is running once Remove returns.
    options_.reactor->Remove(rx_reg_);
  }
  if (reader_.joinable()) {
    reader_.request_stop();
    reader_.join();
  }
}

ByteBuffer GiopClient::BuildRequestHead(
    const corba::OctetSeq& object_key, const std::string& operation,
    const std::vector<qos::QoSParameter>& qos_params, std::size_t args_size,
    bool response_expected, corba::ULong request_id) const {
  RequestHeaderView header;
  header.request_id = request_id;
  header.response_expected = response_expected;
  header.object_key = object_key;
  header.operation = operation;
  header.requesting_principal = options_.principal;
  header.qos_params = &qos_params;

  // Version switch (paper §4.2): the version field tells the receiver
  // whether standard GIOP or the QoS extension is used.
  const Version version = (options_.use_qos_extension && !qos_params.empty())
                              ? kGiopQos
                              : kGiop10;
  return BuildRequestPreamble(version, header, args_size, options_.order,
                              BufferPool::Default().Lease());
}

Status GiopClient::SendSerialized(const ByteBuffer& msg) {
  MutexLock lock(send_mu_);
  return channel_->SendMessage(msg.view());
}

Status GiopClient::SendSerializedV(const ByteBuffer& head,
                                   std::span<const corba::Octet> tail) {
  MutexLock lock(send_mu_);
  if (tail.empty()) return channel_->SendMessage(head.view());
  const std::span<const std::uint8_t> parts[] = {head.view(), tail};
  return channel_->SendMessageV(parts);
}

void GiopClient::EnsureReaderLocked() {
  if (reader_started_) return;
  reader_started_ = true;
  if (options_.reactor != nullptr) {
    auto reg = options_.reactor->Add(
        [this](const sim::WaitSet& set, std::uint64_t token) {
          return channel_->RegisterRx(set, token);
        },
        [this] { DrainReactor(); });
    if (reg.ok()) {
      reactor_registered_ = true;
      rx_reg_ = *reg;
      return;
    }
    // Channel has no non-blocking receive path: fall back to the polling
    // reader thread below.
  }
  reader_ = Thread([this](std::stop_token stop) { ReaderLoop(stop); });
}

Result<ParsedMessage> GiopClient::AwaitSlot(corba::ULong id,
                                            const std::shared_ptr<Slot>& slot,
                                            Duration timeout,
                                            bool abandon_on_timeout) {
  const TimePoint deadline = DeadlineFor(timeout);
  MutexLock lock(mu_);
  while (!slot->done) {
    if (!slot->cv.WaitUntil(mu_, deadline)) break;
  }
  if (!slot->done) {
    if (abandon_on_timeout) {
      // The Reply may still arrive; remember the id so the demux reader
      // discards it instead of flagging an unknown-id protocol error.
      pending_.erase(id);
      AbandonLocked(id);
    }
    return Status(DeadlineExceededError("no Reply for request " +
                                        std::to_string(id)));
  }
  pending_.erase(id);
  return std::move(slot->outcome);
}

void GiopClient::ReaderLoop(std::stop_token stop) {
  while (!stop.stop_requested()) {
    auto raw = channel_->ReceiveMessage(options_.reader_poll);
    if (!raw.ok()) {
      if (raw.status().code() == ErrorCode::kDeadlineExceeded) {
        continue;  // idle poll quantum: re-check the stop token
      }
      FailPending(raw.status(), /*terminal=*/true);
      return;
    }
    if (HandleFrame(*std::move(raw))) return;
  }
}

void GiopClient::DrainReactor() {
  // Drain contract: one readiness signal may cover several messages; keep
  // pulling until nothing is pending. On a terminal condition the
  // registration stays put (removal is the destructor's barrier); further
  // signals just re-fail an already-broken connection.
  for (;;) {
    Result<std::optional<ByteBuffer>> raw = channel_->TryReceiveMessage();
    if (!raw.ok()) {
      FailPending(raw.status(), /*terminal=*/true);
      return;
    }
    if (!raw->has_value()) return;  // drained
    if (HandleFrame(*std::move(*raw))) return;
  }
}

bool GiopClient::HandleFrame(ByteBuffer raw) {
  // Adopt the receive buffer: the ParsedMessage owns the frame, so the
  // reply body is never copied on its way up to the stub.
  auto parsed = ParseMessage(std::move(raw));
  if (!parsed.ok()) {
    FailPending(parsed.status(), /*terminal=*/false);
    return false;
  }
  switch (parsed->header.message_type) {
    case MsgType::kReply: {
      cdr::Decoder dec = parsed->MakeBodyDecoder();
      auto reply = ParseReplyHeader(dec);
      if (!reply.ok()) {
        FailPending(reply.status(), /*terminal=*/false);
        return false;
      }
      CompleteRequest(reply->request_id, *std::move(parsed));
      return false;
    }
    case MsgType::kLocateReply: {
      cdr::Decoder dec = parsed->MakeBodyDecoder();
      auto reply = ParseLocateReplyHeader(dec);
      if (!reply.ok()) {
        FailPending(reply.status(), /*terminal=*/false);
        return false;
      }
      CompleteRequest(reply->request_id, *std::move(parsed));
      return false;
    }
    case MsgType::kMessageError:
      // MessageError carries no request id, so every in-flight request
      // is failed — the connection itself survives, per GIOP.
      FailPending(Status(ProtocolError(
                      "peer answered MessageError (GIOP version not "
                      "accepted?)")),
                  /*terminal=*/false);
      return false;
    case MsgType::kCloseConnection:
      FailPending(Status(UnavailableError("peer closed the GIOP connection")),
                  /*terminal=*/true);
      return true;
    default:
      FailPending(Status(ProtocolError(
                      "unexpected GIOP message: " +
                      std::string(MsgTypeName(parsed->header.message_type)))),
                  /*terminal=*/false);
      return false;
  }
}

void GiopClient::CompleteRequest(corba::ULong request_id, ParsedMessage msg) {
  MutexLock lock(mu_);
  auto it = pending_.find(request_id);
  if (it == pending_.end()) {
    if (abandoned_ != nullptr && abandoned_->ids.erase(request_id) != 0) {
      return;  // late reply for a cancelled/timed-out request: discard
    }
    COOL_LOG(kWarn, "giop")
        << "Reply for unknown request id " << request_id << ", discarded";
    return;
  }
  Slot& slot = *it->second;
  if (slot.done) return;  // already failed/cancelled; keep that outcome
  slot.outcome = std::move(msg);
  slot.done = true;
  slot.cv.NotifyOne();
}

void GiopClient::FailPending(const Status& status, bool terminal) {
  MutexLock lock(mu_);
  for (auto& [id, slot] : pending_) {
    if (slot->done) continue;
    slot->outcome = status;
    slot->done = true;
    slot->cv.NotifyOne();
  }
  if (terminal) {
    broken_ = status;
    // Nothing further can arrive on this connection: release the
    // abandoned-id memory (satellite: evict on connection close).
    abandoned_.reset();
  }
}

void GiopClient::AbandonLocked(corba::ULong id) {
  if (abandoned_ == nullptr) abandoned_ = std::make_unique<AbandonMemory>();
  if (!abandoned_->ids.insert(id).second) return;
  abandoned_->fifo.push_back(id);
  while (abandoned_->fifo.size() > options_.abandoned_cap) {
    // FIFO cap; ids consumed out of band leave stale fifo entries, whose
    // eviction is then a no-op erase.
    abandoned_->ids.erase(abandoned_->fifo.front());
    abandoned_->fifo.pop_front();
  }
}

Result<GiopClient::Reply> GiopClient::MakeReply(ParsedMessage parsed) {
  Reply reply;
  cdr::Decoder dec = parsed.MakeBodyDecoder();
  COOL_ASSIGN_OR_RETURN(reply.header, ParseReplyHeader(dec));
  reply.message = std::move(parsed);
  reply.results_offset_ = dec.offset();
  return reply;
}

Result<GiopClient::Reply> GiopClient::Invoke(
    const corba::OctetSeq& object_key, const std::string& operation,
    std::span<const corba::Octet> args_cdr,
    const std::vector<qos::QoSParameter>& qos_params, Duration timeout) {
  COOL_ASSIGN_OR_RETURN(
      PendingCall call, StartCall(args_cdr, [&](corba::ULong id) {
        return BuildRequestHead(object_key, operation, qos_params,
                                args_cdr.size(), true, id);
      }));
  COOL_ASSIGN_OR_RETURN(
      ParsedMessage msg,
      AwaitSlot(call.id, call.slot, timeout, /*abandon_on_timeout=*/true));
  if (msg.header.message_type != MsgType::kReply) {
    return Status(ProtocolError("expected Reply for request " +
                                std::to_string(call.id)));
  }
  return MakeReply(std::move(msg));
}

Status GiopClient::InvokeOneway(
    const corba::OctetSeq& object_key, const std::string& operation,
    std::span<const corba::Octet> args_cdr,
    const std::vector<qos::QoSParameter>& qos_params) {
  corba::ULong id = 0;
  {
    MutexLock lock(mu_);
    if (!broken_.ok()) return broken_;
    id = next_request_id_++;
  }
  const ByteBuffer head = BuildRequestHead(object_key, operation, qos_params,
                                           args_cdr.size(), false, id);
  return SendSerializedV(head, args_cdr);
}

Result<corba::ULong> GiopClient::InvokeDeferred(
    const corba::OctetSeq& object_key, const std::string& operation,
    std::span<const corba::Octet> args_cdr,
    const std::vector<qos::QoSParameter>& qos_params) {
  COOL_ASSIGN_OR_RETURN(
      PendingCall call, StartCall(args_cdr, [&](corba::ULong id) {
        return BuildRequestHead(object_key, operation, qos_params,
                                args_cdr.size(), true, id);
      }));
  return call.id;
}

Result<GiopClient::Reply> GiopClient::PollReply(corba::ULong request_id,
                                                Duration timeout) {
  std::shared_ptr<Slot> slot;
  {
    MutexLock lock(mu_);
    auto it = pending_.find(request_id);
    if (it == pending_.end()) {
      if (abandoned_ != nullptr && abandoned_->ids.erase(request_id) != 0) {
        return Status(CancelledError("request was cancelled"));
      }
      if (!broken_.ok()) return broken_;
      return Status(FailedPreconditionError("no deferred request with id " +
                                            std::to_string(request_id)));
    }
    slot = it->second;
  }
  COOL_ASSIGN_OR_RETURN(
      ParsedMessage msg,
      AwaitSlot(request_id, slot, timeout, /*abandon_on_timeout=*/false));
  if (msg.header.message_type != MsgType::kReply) {
    return Status(ProtocolError("expected Reply for request " +
                                std::to_string(request_id)));
  }
  return MakeReply(std::move(msg));
}

Status GiopClient::Cancel(corba::ULong request_id) {
  {
    MutexLock lock(mu_);
    auto it = pending_.find(request_id);
    if (it != pending_.end()) {
      Slot& slot = *it->second;
      if (!slot.done) {
        slot.outcome = Status(CancelledError("request was cancelled"));
        slot.done = true;
        slot.cv.NotifyOne();
      }
      pending_.erase(it);
    }
    AbandonLocked(request_id);
  }
  CancelRequestHeader header{request_id};
  return SendSerialized(BuildCancelRequest(kGiop10, header, options_.order));
}

Result<LocateStatus> GiopClient::Locate(const corba::OctetSeq& object_key,
                                        Duration timeout) {
  COOL_ASSIGN_OR_RETURN(
      PendingCall call, StartCall({}, [&](corba::ULong id) {
        LocateRequestHeader header;
        header.request_id = id;
        header.object_key = object_key;
        return BuildLocateRequest(kGiop10, header, options_.order);
      }));
  COOL_ASSIGN_OR_RETURN(
      ParsedMessage msg,
      AwaitSlot(call.id, call.slot, timeout, /*abandon_on_timeout=*/true));
  if (msg.header.message_type != MsgType::kLocateReply) {
    return Status(ProtocolError("expected LocateReply"));
  }
  cdr::Decoder dec = msg.MakeBodyDecoder();
  COOL_ASSIGN_OR_RETURN(LocateReplyHeader reply, ParseLocateReplyHeader(dec));
  return reply.locate_status;
}

Status GiopClient::SendClose() {
  return SendSerialized(BuildCloseConnection(kGiop10, options_.order));
}

// --- GiopServer ---------------------------------------------------------------

GiopServer::~GiopServer() { Close(); }

Status GiopServer::SendSerialized(const ByteBuffer& msg) {
  MutexLock lock(send_mu_);
  return channel_->SendMessage(msg.view());
}

Status GiopServer::SendSerializedV(const ByteBuffer& head,
                                   std::span<const corba::Octet> tail) {
  MutexLock lock(send_mu_);
  if (tail.empty()) return channel_->SendMessage(head.view());
  const std::span<const std::uint8_t> parts[] = {head.view(), tail};
  return channel_->SendMessageV(parts);
}

Status GiopServer::DispatchAndReply(const DispatchJob& job) {
  cdr::Decoder dec = job.ArgsDecoder();
  DispatchResult result = dispatcher_(job.header, dec);
  requests_served_.fetch_add(1, std::memory_order_relaxed);
  if (!job.header.response_expected) return Status::Ok();

  ReplyHeader reply;
  reply.request_id = job.header.request_id;
  reply.reply_status = result.status;
  // The Reply answers in the Request's GIOP version (a 9.9 conversation
  // stays 9.9; Reply's format is identical in both). Preamble in a pooled
  // buffer, result body sent as the gathered tail — no frame concatenation.
  const ByteBuffer head =
      BuildReplyPreamble(job.msg.header.version, reply, result.body.size(),
                         options_->order, BufferPool::Default().Lease());
  return SendSerializedV(head, result.body.view());
}

DispatchPool* GiopServer::EnsurePrivatePool() {
  MutexLock lock(pool_mu_);
  if (pool_closed_) return nullptr;
  if (private_pool_ == nullptr) {
    DispatchPool::Options pool_options;
    pool_options.workers = options_->worker_threads;
    pool_options.queue_capacity = options_->queue_capacity;
    pool_options.scheduler = options_->scheduler;
    pool_options.codel_enabled = options_->codel_enabled;
    pool_options.codel_target = options_->codel_target;
    pool_options.codel_interval = options_->codel_interval;
    private_pool_ = std::make_unique<DispatchPool>(pool_options);
  }
  return private_pool_.get();
}

void GiopServer::RunDispatchJob(const DispatchJob& job) {
  {
    // Last-chance cancel: a CancelRequest that raced the dequeue.
    MutexLock lock(pool_mu_);
    if (TakeCancelledLocked(job.header.request_id)) {
      requests_cancelled_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
  }
  const Status sent = DispatchAndReply(job);
  if (!sent.ok()) {
    COOL_LOG(kWarn, "giop")
        << "Reply send failed for request " << job.header.request_id << ": "
        << sent;
  }
}

void GiopServer::DropDispatchJob(const DispatchJob& job) {
  requests_shed_.fetch_add(1, std::memory_order_relaxed);
  if (!job.header.response_expected) return;
  // CORBA TRANSIENT, COMPLETED_NO — the standard system-exception body
  // (repo id, minor, completion status; see orb/exceptions.h), encoded
  // here directly because the GIOP layer sits below the ORB's exception
  // types. Minor code 1 = dispatch queue shed by AQM.
  cdr::Encoder body = MakeBodyEncoder();
  body.PutString("IDL:omg.org/CORBA/TRANSIENT:1.0");
  body.PutULong(1);
  body.PutULong(1);  // CompletionStatus::kNo
  ReplyHeader reply;
  reply.request_id = job.header.request_id;
  reply.reply_status = ReplyStatus::kSystemException;
  const ByteBuffer encoded = std::move(body).TakeBuffer();
  const ByteBuffer head =
      BuildReplyPreamble(job.msg.header.version, reply, encoded.size(),
                         options_->order, BufferPool::Default().Lease());
  const Status sent = SendSerializedV(head, encoded.view());
  if (!sent.ok()) {
    COOL_LOG(kWarn, "giop")
        << "Shed-reply send failed for request " << job.header.request_id
        << ": " << sent;
  }
}

bool GiopServer::TakeCancelledLocked(corba::ULong id) {
  if (cancel_memory_ == nullptr) return false;
  return cancel_memory_->ids.erase(id) != 0;
}

void GiopServer::RememberCancelLocked(corba::ULong id) {
  if (cancel_memory_ == nullptr) {
    // Lazy: most connections never see a CancelRequest, so they never pay
    // for the set/fifo pair (a default-constructed deque alone costs ~576
    // heap bytes on libstdc++ — real money across 100k connections).
    cancel_memory_ = std::make_unique<CancelMemory>();
  }
  if (!cancel_memory_->ids.insert(id).second) return;
  cancel_memory_->fifo.push_back(id);
  while (cancel_memory_->fifo.size() > options_->cancelled_cap) {
    // FIFO cap; consumed ids leave stale fifo entries (no-op erase).
    cancel_memory_->ids.erase(cancel_memory_->fifo.front());
    cancel_memory_->fifo.pop_front();
  }
}

void GiopServer::Close() {
  DispatchPool* private_pool = nullptr;
  {
    MutexLock lock(pool_mu_);
    if (pool_closed_) return;
    pool_closed_ = true;
    private_pool = private_pool_.get();
  }
  if (options_->pool != nullptr) {
    // Shared pool: barrier out our queued and in-flight jobs; the pool
    // itself lives on for other connections.
    options_->pool->DetachRunner(runner_id_);
  }
  if (private_pool != nullptr) {
    // Private pool: drain queued upcalls and join its workers. The object
    // itself lives until the destructor (HandleCancel may still read it).
    private_pool->Close();
  }
  MutexLock lock(pool_mu_);
  cancel_memory_.reset();
}

Status GiopServer::HandleRequest(ParsedMessage msg) {
  cdr::Decoder dec = msg.MakeBodyDecoder();
  auto header = ParseRequestHeader(dec, msg.header.version);
  if (!header.ok()) {
    (void)SendSerialized(BuildMessageError(kGiop10, options_->order));
    return header.status();
  }

  {
    MutexLock lock(pool_mu_);
    if (TakeCancelledLocked(header->request_id)) {
      // Cancelled before we started processing: GIOP allows dropping it.
      requests_cancelled_.fetch_add(1, std::memory_order_relaxed);
      return Status::Ok();
    }
  }

  DispatchJob job;
  job.args_offset = dec.offset();
  job.header = *std::move(header);
  job.msg = std::move(msg);

  if (options_->pool == nullptr && options_->worker_threads == 0) {
    return DispatchAndReply(job);  // historical inline mode
  }
  // Shared or private pool: the request's QoS parameters become a full
  // scheduling profile (band + weight + rate), the classify stage of the
  // hierarchical scheduler. Submit runs outside pool_mu_ — it blocks for
  // backpressure.
  DispatchPool* pool = options_->pool;
  if (pool == nullptr) {
    pool = EnsurePrivatePool();
    if (pool == nullptr) {
      return Status(CancelledError("server worker pool is closed"));
    }
  }
  const qos::SchedProfile profile =
      qos::ClassifyForScheduling(job.header.qos_params);
  if (!pool->Submit(this, runner_id_, profile, std::move(job))) {
    return Status(CancelledError("server dispatch pool is closed"));
  }
  return Status::Ok();
}

Status GiopServer::HandleCancel(corba::ULong request_id) {
  // Kill a queued-but-unstarted dispatch outright — shared pool first,
  // then the private pool. CancelQueued takes the pool's own lock, so it
  // must run outside pool_mu_ (kEngine ranks above kDispatchPool only in
  // the Submit direction; keeping them unnested sidesteps the question).
  if (options_->pool != nullptr &&
      options_->pool->CancelQueued(runner_id_, request_id)) {
    requests_cancelled_.fetch_add(1, std::memory_order_relaxed);
    return Status::Ok();
  }
  DispatchPool* private_pool = nullptr;
  {
    MutexLock lock(pool_mu_);
    private_pool = private_pool_.get();
  }
  if (private_pool != nullptr &&
      private_pool->CancelQueued(runner_id_, request_id)) {
    requests_cancelled_.fetch_add(1, std::memory_order_relaxed);
    return Status::Ok();
  }
  // Not queued (not yet arrived, or already dispatched): remember the id
  // so a late Request is dropped. An upcall already running is not
  // interrupted, per GIOP's best-effort cancel semantics.
  MutexLock lock(pool_mu_);
  RememberCancelLocked(request_id);
  return Status::Ok();
}

Status GiopServer::ServeOne(Duration timeout) {
  auto raw = channel_->ReceiveMessage(timeout);
  if (!raw.ok()) return raw.status();
  return HandleFrame(*std::move(raw));
}

Status GiopServer::HandleFrame(ByteBuffer raw) {
  // Adopt the receive buffer: the args decoder reads straight out of the
  // transport's frame, which rides inside the job without copies.
  auto parsed = ParseMessage(std::move(raw));
  if (!parsed.ok()) {
    (void)SendSerialized(BuildMessageError(kGiop10, options_->order));
    return parsed.status();
  }
  const MessageHeader& h = parsed->header;

  // Version gate (paper §4.2, backwards compatibility): an unmodified GIOP
  // implementation rejects the 9.9 extension with MessageError.
  const bool version_ok =
      h.version == kGiop10 ||
      (h.version == kGiopQos && options_->accept_qos_extension);
  if (!version_ok) {
    COOL_LOG(kInfo, "giop") << "rejecting GIOP version "
                            << h.version.ToString();
    (void)SendSerialized(BuildMessageError(kGiop10, options_->order));
    return Status::Ok();  // connection survives, per GIOP
  }

  switch (h.message_type) {
    case MsgType::kRequest:
      return HandleRequest(*std::move(parsed));
    case MsgType::kCancelRequest: {
      cdr::Decoder dec = parsed->MakeBodyDecoder();
      COOL_ASSIGN_OR_RETURN(CancelRequestHeader cancel,
                            ParseCancelRequestHeader(dec));
      return HandleCancel(cancel.request_id);
    }
    case MsgType::kLocateRequest: {
      cdr::Decoder dec = parsed->MakeBodyDecoder();
      COOL_ASSIGN_OR_RETURN(LocateRequestHeader locate,
                            ParseLocateRequestHeader(dec));
      LocateReplyHeader reply;
      reply.request_id = locate.request_id;
      const bool here = locator_ ? locator_(locate.object_key) : false;
      reply.locate_status =
          here ? LocateStatus::kObjectHere : LocateStatus::kUnknownObject;
      return SendSerialized(
          BuildLocateReply(h.version, reply, options_->order));
    }
    case MsgType::kCloseConnection:
      return CancelledError("peer closed connection");
    case MsgType::kMessageError:
      return ProtocolError("peer reported MessageError");
    case MsgType::kReply:
    case MsgType::kLocateReply:
      (void)SendSerialized(BuildMessageError(kGiop10, options_->order));
      return ProtocolError("client-role message received by server");
  }
  return InternalError("unreachable GIOP message type");
}

Status GiopServer::Serve() {
  Status result = Status::Ok();
  for (;;) {
    Status s = ServeOne(seconds(3600));
    if (s.ok()) continue;
    if (s.code() == ErrorCode::kProtocolError) {
      // Protocol damage is reported but the connection soldiers on, as
      // GIOP prescribes after MessageError.
      COOL_LOG(kWarn, "giop") << "protocol error on connection: " << s;
      continue;
    }
    result = s;
    break;
  }
  // Connection over: finish queued upcalls, stop the pool, drop the
  // cancel memory (satellite: evict on connection close).
  Close();
  return result;
}

}  // namespace cool::giop
