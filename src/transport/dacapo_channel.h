// Da CaPo as the third transport under COOL's generic transport layer —
// alternative (i) of the paper's Fig. 7: "Da CaPo integrated as another
// transport protocol below the generic transport layer. Da CaPo is then
// forwarding messages formatted according to the message protocols above."
//
// This is where the unilateral message-layer -> transport-layer QoS
// negotiation of §4.3 becomes real: SetQoSParameter maps the QoS spec to
// protocol requirements, asks the configuration manager for a module graph,
// and — when the graph differs from the running one — drives a Da CaPo
// reconfiguration. If no admissible configuration exists, the error
// propagates to the client as an exception before any Request is sent.
#pragma once

#include <atomic>

#include "common/mutex.h"
#include "dacapo/config_manager.h"
#include "dacapo/resource_manager.h"
#include "dacapo/session.h"
#include "transport/com_channel.h"
#include "transport/qos_egress.h"

namespace cool::transport {

class DacapoComChannel : public ComChannel {
 public:
  DacapoComChannel(std::unique_ptr<dacapo::Session> session,
                   dacapo::NetworkEstimate estimate,
                   qos::QoSSpec initial_qos)
      : session_(std::move(session)),
        estimate_(estimate),
        current_qos_(std::move(initial_qos)) {}
  ~DacapoComChannel() override;

  std::string_view protocol() const override { return "dacapo"; }

  // Messages larger than one Da CaPo packet are fragmented with a 1-octet
  // continuation header and reassembled on receive — the COOL-A-module
  // adaptation work of Fig. 7 alternative (i). The stream T service (and
  // any ARQ graph) is FIFO, so concatenation reassembly is sound.
  Status SendMessage(std::span<const std::uint8_t> message) override;
  // Gathered send: fragments are filled straight from the parts, crossing
  // part boundaries inside a packet — no joined staging buffer.
  Status SendMessageV(
      std::span<const std::span<const std::uint8_t>> parts) override;
  Result<ByteBuffer> ReceiveMessage(Duration timeout) override;
  Result<std::optional<ByteBuffer>> TryReceiveMessage() override;
  bool RegisterRx(const sim::WaitSet& set, std::uint64_t token) override;
  void Close() override;

  Status SetQoSParameter(const qos::QoSSpec& spec) override;
  qos::Capability TransportCapability() const override;
  qos::QoSSpec CurrentQoS() const override;

  // The module graph currently carrying this channel's traffic.
  dacapo::ModuleGraphSpec current_graph() const { return session_->graph(); }
  dacapo::Session& session() { return *session_; }

  // Capability a Da CaPo transport over `estimate` can promise.
  static qos::Capability CapabilityFor(const dacapo::NetworkEstimate& est);

  // Mounts the host's shared egress scheduler on this channel: every
  // subsequent SendMessage/SendMessageV waits its weighted-fair turn
  // before taking the session, so concurrent bindings share the link by
  // QoS class instead of by lock-acquisition luck. The binding's profile
  // comes from the channel's current QoS spec and follows renegotiations.
  // The scheduler must outlive the channel (the ORB owns it).
  void AttachEgress(EgressScheduler* egress);
  std::uint64_t egress_binding() const noexcept { return egress_id_; }

 private:
  // Folds one received fragment into the reassembly state; returns the
  // completed message when the fragment was the last one.
  Result<std::optional<ByteBuffer>> ConsumeFragmentLocked(
      const dacapo::ReceivedMessage& fragment) COOL_REQUIRES(rx_mu_);

  std::unique_ptr<dacapo::Session> session_;
  dacapo::NetworkEstimate estimate_;
  // Optional egress arbitration (null = direct sends). Set once by
  // AttachEgress before concurrent use; senders load-acquire it.
  std::atomic<EgressScheduler*> egress_{nullptr};
  const std::uint64_t egress_id_ = EgressScheduler::AllocBindingId();
  mutable Mutex qos_mu_{LockRank::kChannel, "transport::DacapoComChannel::qos_mu_"};
  qos::QoSSpec current_qos_ COOL_GUARDED_BY(qos_mu_);
  // tx keeps the fragments of one message contiguous on the session.
  Mutex tx_mu_ COOL_ACQUIRED_AFTER(call_mu_, async_mu_) {
      LockRank::kChannel, "transport::DacapoComChannel::tx_mu_"};
  Mutex rx_mu_ COOL_ACQUIRED_AFTER(call_mu_) {
      LockRank::kChannel, "transport::DacapoComChannel::rx_mu_"};
  // Cross-call reassembly state: a non-blocking receive may return with a
  // message half-assembled; the next call (blocking or not) continues it.
  ByteBuffer rx_partial_ COOL_GUARDED_BY(rx_mu_);
  bool rx_partial_active_ COOL_GUARDED_BY(rx_mu_) = false;
};

class DacapoComManager : public ComManager {
 public:
  // `resources` (optional) enables server-side admission control.
  DacapoComManager(sim::Network* net, sim::Address listen_addr,
                   dacapo::NetworkEstimate estimate,
                   dacapo::ResourceManager* resources = nullptr)
      : net_(net),
        estimate_(estimate),
        acceptor_(net, std::move(listen_addr), resources) {}

  std::string_view protocol() const override { return "dacapo"; }

  Status Listen() { return acceptor_.Listen(); }

  // Opens a channel whose module graph is configured from `qos` (empty
  // spec -> empty graph over the reliable stream T service).
  Result<std::unique_ptr<ComChannel>> OpenChannel(
      const sim::Address& remote, const qos::QoSSpec& qos) override;
  Result<std::unique_ptr<ComChannel>> AcceptChannel() override;
  Result<std::unique_ptr<ComChannel>> TryAcceptChannel() override;
  bool RegisterAccept(const sim::WaitSet& set, std::uint64_t token) override;
  void Close() override { acceptor_.Close(); }

  const sim::Address& address() const noexcept { return acceptor_.address(); }

 private:
  sim::Network* net_;
  dacapo::NetworkEstimate estimate_;
  dacapo::Acceptor acceptor_;
};

}  // namespace cool::transport
