#include "transport/epoll_poller.h"

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <unistd.h>

#include <array>
#include <cerrno>
#include <cstring>
#include <utility>

#include "common/logging.h"

namespace cool::transport {

namespace {
// Token 0 is reserved for the shutdown eventfd.
constexpr std::uint64_t kWakeToken = 0;
}  // namespace

EpollPoller::EpollPoller(ReadyFn on_ready) : on_ready_(std::move(on_ready)) {
  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd_ < 0) return;
  wake_fd_ = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  if (wake_fd_ < 0) {
    ::close(epoll_fd_);
    epoll_fd_ = -1;
    return;
  }
  ::epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.u64 = kWakeToken;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev) != 0) {
    ::close(wake_fd_);
    ::close(epoll_fd_);
    wake_fd_ = epoll_fd_ = -1;
    return;
  }
  thread_ = Thread([this](std::stop_token stop) { Loop(stop); });
}

EpollPoller::~EpollPoller() {
  if (!valid()) return;
  thread_.request_stop();
  const std::uint64_t one = 1;
  [[maybe_unused]] const ssize_t n = ::write(wake_fd_, &one, sizeof one);
  thread_.join();
  ::close(wake_fd_);
  ::close(epoll_fd_);
}

Status EpollPoller::Watch(int fd, std::uint64_t token) {
  if (!valid()) return UnavailableError("epoll poller failed to initialise");
  if (token == kWakeToken) return InvalidArgumentError("token 0 is reserved");
  ::epoll_event ev{};
  ev.events = EPOLLIN | EPOLLRDHUP | EPOLLET;
  ev.data.u64 = token;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
    return InternalError(std::string("epoll_ctl(ADD): ") +
                         std::strerror(errno));
  }
  return Status::Ok();
}

void EpollPoller::Unwatch(int fd) {
  if (!valid()) return;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
}

void EpollPoller::Loop(std::stop_token stop) {
  // Burst drain, mirroring the reactor workers' 64-event harvest: one
  // epoll_wait syscall forwards up to a full train of kernel readiness
  // events, so fd-heavy workloads pay the wakeup once per burst.
  std::array<::epoll_event, 128> events;
  while (!stop.stop_requested()) {
    const int n = ::epoll_wait(epoll_fd_, events.data(),
                               static_cast<int>(events.size()), -1);
    if (n < 0) {
      if (errno == EINTR) continue;
      COOL_LOG(kError, "reactor") << "epoll_wait: " << std::strerror(errno);
      return;
    }
    for (int i = 0; i < n; ++i) {
      const std::uint64_t token = events[static_cast<std::size_t>(i)].data.u64;
      if (token == kWakeToken) {
        std::uint64_t drained = 0;
        [[maybe_unused]] const ssize_t r =
            ::read(wake_fd_, &drained, sizeof drained);
        continue;
      }
      on_ready_(token);
    }
  }
}

}  // namespace cool::transport
