#include "transport/reactor.h"

#include <array>
#include <utility>

namespace cool::transport {

namespace {
// Worker identity of the calling thread; -1 outside every reactor.
thread_local int tl_worker_index = -1;
}  // namespace

Reactor::Reactor(unsigned workers) : Reactor(Options{.workers = workers}) {}

Reactor::Reactor(const Options& options) {
  const unsigned n =
      options.workers == 0 ? HardwareConcurrency() : options.workers;
  workers_.reserve(n);
  for (unsigned i = 0; i < n; ++i) {
    workers_.push_back(std::make_unique<Worker>());
    workers_.back()->index = i;
  }
  for (auto& w : workers_) {
    Worker* worker = w.get();
    worker->thread = Thread(
        [this, worker, pin = options.pin_workers](std::stop_token stop) {
          if (pin) PinThisThreadToCore(worker->index);
          WorkerLoop(*worker, stop);
        });
    worker->thread_id = worker->thread.get_id();
  }
}

Reactor::~Reactor() {
  for (auto& w : workers_) w->thread.request_stop();
  for (auto& w : workers_) w->waitset.Close();
  for (auto& w : workers_) {
    if (w->thread.joinable()) w->thread.join();
  }
  // epoll_'s destructor stops and joins the forwarder thread.
}

Reactor& Reactor::Default() {
  // Leaky singleton: channels may signal their watchables during static
  // destruction, after a function-local Reactor would already be gone.
  static Reactor* shared = new Reactor();  // NEW_ALLOWLIST: leaky singleton
  return *shared;
}

int Reactor::CurrentWorkerIndex() noexcept { return tl_worker_index; }

void Reactor::WorkerLoop(Worker& w, std::stop_token stop) {
  tl_worker_index = static_cast<int>(w.index);
  // Burst harvest (the packet-train idiom on the event path): one wait-set
  // wakeup delivers up to 64 coalesced readiness events, amortizing the
  // wait/lock round trip across the whole train at high connection counts.
  std::array<sim::WaitSet::ReadyEvent, 64> events;
  while (!stop.stop_requested()) {
    const std::size_t n = w.waitset.Wait(events, seconds(60));
    if (stop.stop_requested()) return;
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint64_t id = events[i].token;
      std::shared_ptr<Registration> reg;
      {
        MutexLock lock(w.mu);
        const auto it = w.regs.find(id);
        if (it == w.regs.end()) continue;  // removed after signalling
        reg = it->second;
        w.running_id = id;
      }
      dispatches_.fetch_add(1, std::memory_order_relaxed);
      {
        // Registered callbacks run to completion on this shared worker:
        // mark the scope so unbounded blocking waits inside it are
        // reported by the deadlock detector (DESIGN.md §11).
        deadlock::ScopedContext ctx(deadlock::Context::kReactorCallback);
        reg->cb();
      }
      DrainRemovalWaiters(w);
    }
  }
}

void Reactor::DrainRemovalWaiters(Worker& w) {
  MutexLock lock(w.mu);
  w.running_id = 0;
  w.idle_cv.NotifyAll();
}

Result<std::uint64_t> Reactor::Add(const AttachFn& attach, Callback cb) {
  const std::uint64_t id = AddManual(std::move(cb));
  Worker& w = WorkerFor(id);
  if (!attach(w.waitset, id)) {
    Remove(id);
    return Status(
        UnsupportedError("readiness source cannot be watched"));
  }
  return id;
}

std::uint64_t Reactor::AddManual(Callback cb) {
  const std::uint64_t id = next_id_.fetch_add(1, std::memory_order_relaxed);
  Worker& w = WorkerFor(id);
  {
    MutexLock lock(w.mu);
    w.regs.emplace(id, std::make_shared<Registration>(std::move(cb)));
  }
  w.waitset.Add(id);
  return id;
}

std::vector<std::uint64_t> Reactor::AddBatch(std::vector<Callback> cbs) {
  std::vector<std::uint64_t> ids(cbs.size(), 0);
  if (cbs.empty()) return ids;
  const std::uint64_t base =
      next_id_.fetch_add(cbs.size(), std::memory_order_relaxed);
  for (std::size_t i = 0; i < cbs.size(); ++i) ids[i] = base + i;
  // A contiguous id block deals round-robin across workers, so each
  // worker's map is locked once and takes ~train/workers inserts.
  const std::size_t n_workers = workers_.size();
  for (std::size_t w = 0; w < n_workers && w < cbs.size(); ++w) {
    Worker& worker = *workers_[(base + w) % n_workers];
    MutexLock lock(worker.mu);
    for (std::size_t i = w; i < cbs.size(); i += n_workers) {
      worker.regs.emplace(
          ids[i], std::make_shared<Registration>(std::move(cbs[i])));
    }
  }
  return ids;
}

bool Reactor::Attach(std::uint64_t id, const AttachFn& attach) {
  Worker& w = WorkerFor(id);
  w.waitset.Add(id);
  if (attach(w.waitset, id)) return true;
  Remove(id);
  return false;
}

Result<std::uint64_t> Reactor::AddFd(int fd, Callback cb) {
  EpollPoller* poller = EnsureEpoll();
  if (poller == nullptr || !poller->valid()) {
    return Status(UnavailableError("epoll poller unavailable"));
  }
  const std::uint64_t id = AddManual(std::move(cb));
  const Status watched = poller->Watch(fd, id);
  if (!watched.ok()) {
    Remove(id);
    return watched;
  }
  return id;
}

void Reactor::Schedule(std::uint64_t id) {
  if (id == 0) return;
  WorkerFor(id).waitset.Post(id);
}

void Reactor::ScheduleAt(std::uint64_t id, TimePoint when) {
  if (id == 0) return;
  WorkerFor(id).waitset.PostAt(id, when);
}

void Reactor::Remove(std::uint64_t id) {
  if (id == 0) return;
  Worker& w = WorkerFor(id);
  w.waitset.Remove(id);
  MutexLock lock(w.mu);
  w.regs.erase(id);
  if (ThisThreadId() == w.thread_id) return;  // self-removal from callback
  while (w.running_id == id) w.idle_cv.Wait(w.mu);
}

void Reactor::RemoveFd(int fd, std::uint64_t id) {
  {
    MutexLock lock(epoll_mu_);
    if (epoll_ != nullptr) epoll_->Unwatch(fd);
  }
  Remove(id);
}

EpollPoller* Reactor::EnsureEpoll() {
  MutexLock lock(epoll_mu_);
  if (epoll_ == nullptr) {
    epoll_ = std::make_unique<EpollPoller>(
        [this](std::uint64_t token) { Schedule(token); });
  }
  return epoll_.get();
}

}  // namespace cool::transport
