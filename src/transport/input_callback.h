// COOL_InputCallback analogue (paper Fig. 8): "enables integration of
// external events as X Events, socket I/O events and so on". External
// sources register a callback and trigger it; a dispatcher thread runs the
// callbacks serially, decoupling event producers from ORB internals.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>

#include "common/blocking_queue.h"
#include "common/mutex.h"
#include "common/status.h"
#include "common/thread.h"

namespace cool::transport {

class InputCallbackDispatcher {
 public:
  using Callback = std::function<void()>;
  using Id = std::uint64_t;

  InputCallbackDispatcher();
  ~InputCallbackDispatcher();

  InputCallbackDispatcher(const InputCallbackDispatcher&) = delete;
  InputCallbackDispatcher& operator=(const InputCallbackDispatcher&) = delete;

  // Registers an input callback; returns its handle.
  Id Register(Callback callback);
  // Removes a callback. Pending triggers for it become no-ops.
  void Unregister(Id id);

  // Signals that input is available for `id`; the dispatcher thread will
  // invoke the callback. Returns kNotFound for unknown ids.
  Status Trigger(Id id);

  // Stops the dispatcher thread after draining queued triggers.
  void Stop();

  std::size_t registered_count() const;

 private:
  void Run(std::stop_token stop);

  mutable Mutex mu_{LockRank::kChannel, "transport::InputCallbackDispatcher::mu_"};
  std::unordered_map<Id, Callback> callbacks_ COOL_GUARDED_BY(mu_);
  Id next_id_ COOL_GUARDED_BY(mu_) = 1;
  BlockingQueue<Id> triggers_;
  Thread thread_;
};

}  // namespace cool::transport
