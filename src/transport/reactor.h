// Event-driven connection engine (ROADMAP open item 2). The Reactor owns N
// run-to-completion worker loops, each blocked on its own sim::WaitSet;
// every ComChannel read, GIOP demux completion and server accept registers
// as a non-blocking state machine that the owning worker invokes whenever
// its source signals readiness. This replaces the thread-per-channel model
// (one reader thread per client binding, one accept/serve thread per server
// connection) with a flat, connection-count-independent thread pool.
//
// Dispatch contract:
//  * A registration's callback runs on exactly one worker (id % workers)
//    and never concurrently with itself — per-channel state needs no locks
//    against the reactor, only against other application threads.
//  * Callbacks must not block: they drain their source via the transport
//    Try* paths until it reports "nothing more", then return. Heavy work
//    (GIOP dispatch) is handed to the giop::DispatchPool, never run inline.
//  * Remove(id) is a barrier: it returns only once a concurrently running
//    callback for `id` has finished — except when called from inside that
//    callback itself, which unregisters without waiting (self-removal on
//    channel error is the common teardown path).
//
// Real file descriptors join the same machinery through AddFd(): a lazy
// EpollPoller thread turns edge-triggered kernel readiness into Schedule()
// posts, so sim sources and kernel fds feed identical worker loops.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "common/thread.h"
#include "sim/waitset.h"
#include "transport/epoll_poller.h"

namespace cool::transport {

class Reactor {
 public:
  using Callback = std::function<void()>;
  // Binds a readiness source to the chosen worker's wait set under the
  // assigned token (e.g. via sim::Watchable::Watch); returns false when the
  // source cannot be watched.
  using AttachFn = std::function<bool(const sim::WaitSet&, std::uint64_t)>;

  struct Options {
    // 0 = one worker per hardware thread.
    unsigned workers = 0;
    // BESS-style per-core placement: worker i is pinned to CPU i (mod the
    // core count). Combined with the fixed id -> worker mapping this keeps
    // a connection's callbacks — and therefore its channel state — on one
    // cache domain. Best-effort: a refused affinity call (restricted
    // cpuset) degrades to an unpinned worker, never an error.
    bool pin_workers = false;
  };

  // 0 = one worker per hardware thread.
  explicit Reactor(unsigned workers = 0);
  explicit Reactor(const Options& options);
  ~Reactor();

  Reactor(const Reactor&) = delete;
  Reactor& operator=(const Reactor&) = delete;

  // Process-wide instance shared by ORBs/clients that do not bring their
  // own (intentionally leaked: channels may still signal it during static
  // destruction).
  static Reactor& Default();

  // Registers a source + callback. The callback starts firing as soon as
  // `attach` returns (an immediate probe harvests pre-registration state).
  Result<std::uint64_t> Add(const AttachFn& attach, Callback cb);

  // Registration without a source: fires only via Schedule(id).
  std::uint64_t AddManual(Callback cb);

  // Batched registration, phase one: allocates a contiguous id block and
  // installs the callbacks, locking each worker's registration map once
  // per train instead of once per connection. Nothing fires until the
  // matching Attach() — the caller publishes its own bookkeeping for the
  // returned ids in between (the accept-train adoption path).
  std::vector<std::uint64_t> AddBatch(std::vector<Callback> cbs);

  // Batched registration, phase two: binds the readiness source and posts
  // the immediate probe, like Add(). On failure the registration is
  // dropped and the caller falls back to its legacy path.
  bool Attach(std::uint64_t id, const AttachFn& attach);

  // Registers a kernel fd (edge-triggered epoll). The fd stays owned by
  // the caller; unregister with RemoveFd before closing it.
  Result<std::uint64_t> AddFd(int fd, Callback cb);

  // Queues one callback invocation for `id` on its owning worker.
  void Schedule(std::uint64_t id);

  // Queues a callback invocation for `id` due at `when` — the reactor's
  // timer facility. Deadlines ride each worker's wait-set min-heap with
  // lazy cancellation (Remove discards pending entries), so per-connection
  // timeout bookkeeping is O(log n) and never scans.
  void ScheduleAt(std::uint64_t id, TimePoint when);

  // Unregisters `id`; barrier semantics (see file comment).
  void Remove(std::uint64_t id);
  void RemoveFd(int fd, std::uint64_t id);

  unsigned workers() const noexcept {
    return static_cast<unsigned>(workers_.size());
  }
  // The worker a registration's callbacks run on — fixed for the life of
  // the id (connection -> worker affinity).
  unsigned WorkerIndexFor(std::uint64_t id) const noexcept {
    return static_cast<unsigned>(id % workers_.size());
  }
  // Index of the reactor worker the calling thread is, or -1 off-worker.
  // Lets a callback assert it observes a stable worker identity.
  static int CurrentWorkerIndex() noexcept;
  std::uint64_t dispatches() const noexcept {
    return dispatches_.load(std::memory_order_relaxed);
  }

 private:
  struct Registration {
    explicit Registration(Callback f) : cb(std::move(f)) {}
    const Callback cb;
  };

  struct Worker {
    Mutex mu{LockRank::kChannel, "transport::Reactor::Worker::mu"};
    CondVar idle_cv;
    sim::WaitSet waitset;
    std::unordered_map<std::uint64_t, std::shared_ptr<Registration>> regs
        COOL_GUARDED_BY(mu);
    std::uint64_t running_id COOL_GUARDED_BY(mu) = 0;
    ThreadId thread_id;   // written once in the ctor, then read-only
    unsigned index = 0;   // position in workers_ (== the pinned core)
    Thread thread;
  };

  void WorkerLoop(Worker& w, std::stop_token stop);
  // Clears the running marker and releases Remove() barrier waiters.
  void DrainRemovalWaiters(Worker& w);
  Worker& WorkerFor(std::uint64_t id) noexcept {
    return *workers_[id % workers_.size()];
  }
  EpollPoller* EnsureEpoll();

  std::atomic<std::uint64_t> next_id_{1};
  std::atomic<std::uint64_t> dispatches_{0};
  std::vector<std::unique_ptr<Worker>> workers_;

  Mutex epoll_mu_{LockRank::kChannel, "transport::Reactor::epoll_mu_"};
  std::unique_ptr<EpollPoller> epoll_ COOL_GUARDED_BY(epoll_mu_);
};

}  // namespace cool::transport
