#include "transport/com_channel.h"

#include "common/buffer_pool.h"
#include "common/logging.h"

namespace cool::transport {

ComChannel::~ComChannel() = default;

Status ComChannel::SendMessageV(
    std::span<const std::span<const std::uint8_t>> parts) {
  if (parts.size() == 1) return SendMessage(parts[0]);
  std::size_t total = 0;
  for (const auto& part : parts) total += part.size();
  // Gather fallback for transports without a true scatter write: one pooled
  // buffer, recycled when the send returns.
  ByteBuffer joined = BufferPool::Default().Lease(total);
  for (const auto& part : parts) joined.Append(part);
  return SendMessage(joined.view());
}

void ComChannel::DrainAsync() {
  std::vector<Thread> threads;
  {
    MutexLock lock(async_mu_);
    threads.swap(notify_threads_);
  }
  for (auto& t : threads) {
    if (t.joinable()) t.join();
  }
}

Result<ByteBuffer> ComChannel::Call(std::span<const std::uint8_t> request,
                                    Duration timeout) {
  MutexLock lock(call_mu_);
  COOL_RETURN_IF_ERROR(SendMessage(request));
  return ReceiveMessage(timeout);
}

Status ComChannel::Send(std::span<const std::uint8_t> request) {
  return SendMessage(request);
}

Status ComChannel::Reply(std::span<const std::uint8_t> reply) {
  return SendMessage(reply);
}

Result<ComChannel::Deferred> ComChannel::Defer(
    std::span<const std::uint8_t> request) {
  MutexLock lock(async_mu_);
  if (deferred_outstanding_) {
    // One in-flight deferred conversation per channel; interleaving is the
    // message layer's job (GIOP request_id).
    return Status(FailedPreconditionError(
        "channel already has a deferred request outstanding"));
  }
  COOL_RETURN_IF_ERROR(SendMessage(request));
  deferred_outstanding_ = true;
  return Deferred{next_deferred_id_++};
}

Result<ByteBuffer> ComChannel::PollDeferred(Deferred handle,
                                            Duration timeout) {
  {
    MutexLock lock(async_mu_);
    if (cancelled_.erase(handle.id) != 0) {
      deferred_outstanding_ = false;
      return Status(CancelledError("deferred request was cancelled"));
    }
  }
  auto reply = ReceiveMessage(timeout);
  if (reply.ok() ||
      reply.status().code() != ErrorCode::kDeadlineExceeded) {
    MutexLock lock(async_mu_);
    deferred_outstanding_ = false;
  }
  return reply;
}

Status ComChannel::Notify(std::span<const std::uint8_t> request,
                          ReplyCallback callback) {
  COOL_RETURN_IF_ERROR(SendMessage(request));
  MutexLock lock(async_mu_);
  notify_threads_.emplace_back(
      [this, cb = std::move(callback)](std::stop_token) {
        cb(ReceiveMessage(seconds(30)));
      });
  return Status::Ok();
}

Status ComChannel::Cancel(Deferred handle) {
  MutexLock lock(async_mu_);
  if (!deferred_outstanding_) {
    return FailedPreconditionError("no deferred request outstanding");
  }
  cancelled_.insert(handle.id);
  return Status::Ok();
}

Status ComChannel::SetQoSParameter(const qos::QoSSpec& spec) {
  if (spec.empty()) return Status::Ok();
  return UnsupportedError(std::string(protocol()) +
                          " transport does not implement setQoSParameter");
}

qos::Capability ComChannel::TransportCapability() const {
  return qos::Capability::BestEffortOnly();
}

}  // namespace cool::transport
