#include "transport/qos_egress.h"

#include <sstream>

namespace cool::transport {

namespace {
constexpr std::array<const char*, 3> kBandNames{"high", "normal", "low"};
// Fallback park period: catches shaped-flow ready times drifting and any
// lost race between a grant and the wait (WaitUntil is timed, so parked
// senders never hard-block a run-to-completion worker).
constexpr Duration kParkTick = milliseconds(50);
}  // namespace

EgressScheduler::EgressScheduler(const Options& options) : options_(options) {
  MutexLock lock(mu_);
  for (std::size_t band = 0; band < cls_id_.size(); ++band) {
    // Creation order is the WFQ tie-break order: High wins simultaneous
    // activations (same convention as the dispatch pool).
    cls_id_[band] = tree_.AddClass(Tree::kRoot, BandOptions(band));
  }
}

EgressScheduler::~EgressScheduler() { Close(); }

std::uint64_t EgressScheduler::AllocBindingId() {
  static std::atomic<std::uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

sched::ClassOptions EgressScheduler::BandOptions(std::size_t band) const {
  sched::ClassOptions opts;
  opts.name = kBandNames[band];
  opts.weight = options_.class_weights[band];
  opts.quantum_bytes = options_.quantum_bytes;
  opts.codel.enabled = options_.codel_enabled;
  opts.codel.target = options_.codel_target;
  opts.codel.interval = options_.codel_interval;
  return opts;
}

void EgressScheduler::RegisterBinding(std::uint64_t binding_id,
                                      const qos::SchedProfile& profile) {
  MutexLock lock(mu_);
  profiles_[binding_id] = profile;
  const auto band = static_cast<std::size_t>(profile.band);
  sched::FlowProfile fp;
  fp.weight = profile.weight;
  fp.rate_bytes_per_sec = profile.rate_bytes_per_sec;
  tree_.SetFlowProfile(cls_id_[band], binding_id, fp, Now());
  // A re-registration that moved bands leaves idle flow state behind in
  // the old band; forget it (queued tickets, if any, finish where queued).
  for (std::size_t b = 0; b < cls_id_.size(); ++b) {
    if (b != band) tree_.RemoveFlow(cls_id_[b], binding_id);
  }
}

void EgressScheduler::UnregisterBinding(std::uint64_t binding_id) {
  MutexLock lock(mu_);
  profiles_.erase(binding_id);
  tree_.RemoveIf([&](Tree::ClassId, std::uint64_t flow, Ticket* t) {
    if (flow != binding_id) return false;
    t->state = Ticket::State::kRefused;
    t->cv.NotifyOne();
    return true;
  });
  for (std::size_t band = 0; band < cls_id_.size(); ++band) {
    tree_.RemoveFlow(cls_id_[band], binding_id);
  }
}

bool EgressScheduler::Acquire(std::uint64_t binding_id, std::size_t bytes) {
  MutexLock lock(mu_);
  if (closed_) return false;
  const TimePoint now = Now();
  const auto it = profiles_.find(binding_id);
  const qos::SchedProfile prof =
      it != profiles_.end() ? it->second : qos::SchedProfile{};
  if (!busy_ && tree_.empty() && prof.rate_bytes_per_sec == 0) {
    // Uncontended fast path: nothing queued anywhere, take the link. Rate
    // caps always go through the tree — shaping must hold even when the
    // capped binding is alone on the link.
    busy_ = true;
    grants_.fetch_add(1, std::memory_order_relaxed);
    return true;
  }

  Ticket ticket;
  const auto band = static_cast<std::size_t>(prof.band);
  sched::FlowProfile fp;
  fp.weight = prof.weight;
  fp.rate_bytes_per_sec = prof.rate_bytes_per_sec;
  tree_.Enqueue(cls_id_[band], binding_id, fp, &ticket,
                bytes + kMessageBaseCost, now);
  if (!busy_) {
    for (Ticket* t : ServeLocked(now)) t->cv.NotifyOne();
  }
  while (ticket.state == Ticket::State::kWaiting) {
    const TimePoint wall = Now();
    TimePoint deadline = wall + kParkTick;
    if (const auto ready = tree_.NextReadyTime(wall);
        ready.has_value() && *ready < deadline) {
      deadline = *ready;
    }
    ticket.cv.WaitUntil(mu_, deadline);
    if (ticket.state == Ticket::State::kWaiting && !busy_) {
      for (Ticket* t : ServeLocked(Now())) t->cv.NotifyOne();
    }
  }
  if (ticket.state == Ticket::State::kGranted) {
    grants_.fetch_add(1, std::memory_order_relaxed);
    return true;
  }
  return false;
}

void EgressScheduler::Release() {
  MutexLock lock(mu_);
  busy_ = false;
  if (!closed_) {
    for (Ticket* t : ServeLocked(Now())) t->cv.NotifyOne();
  }
}

std::vector<EgressScheduler::Ticket*> EgressScheduler::ServeLocked(
    TimePoint now) {
  std::vector<Ticket*> wake;
  std::vector<Tree::Served> refused;
  std::optional<Tree::Served> next = tree_.Dequeue(now, &refused);
  for (Tree::Served& r : refused) {
    // AQM shed the ticket: its sender wakes, sees kRefused and reports
    // the send as unavailable — the flooding binding pays, not the link.
    r.value->state = Ticket::State::kRefused;
    wake.push_back(r.value);
    sheds_.fetch_add(1, std::memory_order_relaxed);
  }
  if (next.has_value()) {
    busy_ = true;
    next->value->state = Ticket::State::kGranted;
    wake.push_back(next->value);
  }
  return wake;
}

void EgressScheduler::SetClassWeight(qos::SchedProfile::Band band,
                                     std::uint32_t weight) {
  MutexLock lock(mu_);
  const auto b = static_cast<std::size_t>(band);
  options_.class_weights[b] = weight == 0 ? 1 : weight;
  tree_.SetClassOptions(cls_id_[b], BandOptions(b), Now());
}

void EgressScheduler::SetCodel(bool enabled, Duration target,
                               Duration interval) {
  MutexLock lock(mu_);
  options_.codel_enabled = enabled;
  options_.codel_target = target;
  options_.codel_interval = interval;
  for (std::size_t b = 0; b < cls_id_.size(); ++b) {
    tree_.SetClassOptions(cls_id_[b], BandOptions(b), Now());
  }
}

void EgressScheduler::Close() {
  MutexLock lock(mu_);
  if (closed_) return;
  closed_ = true;
  tree_.RemoveIf([](Tree::ClassId, std::uint64_t, Ticket* t) {
    t->state = Ticket::State::kRefused;
    // Teardown wakeup; each ticket has its own CondVar, so this is the
    // single-waiter NotifyOne case, not a broadcast.
    t->cv.NotifyOne();
    return true;
  });
}

std::vector<sched::ClassSnapshot> EgressScheduler::StatsSnapshot() const {
  MutexLock lock(mu_);
  std::vector<sched::ClassSnapshot> all = tree_.Snapshot();
  // Drop the synthetic root: callers see the bands in High/Normal/Low
  // creation order.
  return {all.begin() + 1, all.end()};
}

std::string EgressScheduler::DescribeStats() const {
  std::ostringstream os;
  os << "egress: grants=" << grants() << " sheds=" << sheds();
  for (const sched::ClassSnapshot& s : StatsSnapshot()) {
    os << "\n  class " << s.name << ": queued=" << s.queued
       << " enq=" << s.enqueued << " deq=" << s.dequeued
       << " shed=" << s.dropped << " wait_p50us=" << s.sojourn_p50_us
       << " wait_p99us=" << s.sojourn_p99_us
       << " wait_p999us=" << s.sojourn_p999_us
       << " bindings=" << s.flows.size();
  }
  return os.str();
}

}  // namespace cool::transport
