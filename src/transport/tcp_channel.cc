#include "transport/tcp_channel.h"

#include <array>

namespace cool::transport {

void TcpBuffer::Append(std::span<const std::uint8_t> bytes) {
  if (bytes.empty()) return;
  if (data_.empty()) {
    // Lazy lease: storage comes from the shared pool only while bytes are
    // actually buffered (ReleaseIfDrained hands it back between bursts).
    data_ = BufferPool::Default().Lease(bytes.size());
  }
  data_.Append(bytes);
}

void TcpBuffer::Compact() {
  if (consumed_ == 0) return;
  data_.EraseFront(consumed_);
  consumed_ = 0;
}

void TcpBuffer::ReleaseIfDrained() {
  if (data_.empty() || consumed_ != data_.size()) return;
  data_ = ByteBuffer();  // pooled storage returns to the free list
  consumed_ = 0;
}

Result<std::optional<ByteBuffer>> TcpBuffer::NextMessage() {
  if (buffered_bytes() < 4) return std::optional<ByteBuffer>{};
  const std::uint8_t* p = data_.data() + consumed_;
  const std::uint32_t len = static_cast<std::uint32_t>(p[0]) |
                            static_cast<std::uint32_t>(p[1]) << 8 |
                            static_cast<std::uint32_t>(p[2]) << 16 |
                            static_cast<std::uint32_t>(p[3]) << 24;
  if (len > kMaxMessage) {
    return Status(ProtocolError("message length exceeds limit"));
  }
  if (buffered_bytes() < 4 + static_cast<std::size_t>(len)) {
    return std::optional<ByteBuffer>{};
  }
  // Pooled lease: the one unavoidable stream-to-message copy lands in
  // recycled storage, and the buffer rides up to the engine (which adopts
  // it into a ParsedMessage) without further copies.
  ByteBuffer msg = BufferPool::Default().Lease(len);
  msg.Append({p + 4, len});
  consumed_ += 4 + len;
  // Keep the buffer from growing without bound on long-lived channels.
  if (consumed_ > 64 * 1024) Compact();
  return std::optional<ByteBuffer>{std::move(msg)};
}

TcpComChannel::~TcpComChannel() {
  Close();
  DrainAsync();
}

Status TcpComChannel::SendMessage(std::span<const std::uint8_t> message) {
  const std::span<const std::uint8_t> one[] = {message};
  return SendMessageV(one);
}

Status TcpComChannel::SendMessageV(
    std::span<const std::span<const std::uint8_t>> parts) {
  std::size_t total = 0;
  for (const auto& part : parts) total += part.size();
  const std::uint32_t len = static_cast<std::uint32_t>(total);
  const std::uint8_t prefix[4] = {
      static_cast<std::uint8_t>(len), static_cast<std::uint8_t>(len >> 8),
      static_cast<std::uint8_t>(len >> 16),
      static_cast<std::uint8_t>(len >> 24)};

  // {prefix, parts...} leave as one gathered stream write. The engines
  // never send more than a preamble + an args tail, so the iovec lives on
  // the stack in the common case.
  std::array<std::span<const std::uint8_t>, 4> small;
  std::vector<std::span<const std::uint8_t>> large;
  std::span<const std::span<const std::uint8_t>> iov;
  if (parts.size() + 1 <= small.size()) {
    small[0] = std::span<const std::uint8_t>(prefix, 4);
    for (std::size_t i = 0; i < parts.size(); ++i) small[i + 1] = parts[i];
    iov = std::span(small.data(), parts.size() + 1);
  } else {
    large.reserve(parts.size() + 1);
    large.emplace_back(prefix, 4);
    large.insert(large.end(), parts.begin(), parts.end());
    iov = large;
  }
  MutexLock lock(tx_mu_);
  return socket_->SendV(iov);
}

Result<ByteBuffer> TcpComChannel::ReceiveMessage(Duration timeout) {
  const TimePoint deadline = DeadlineFor(timeout);
  MutexLock lock(rx_mu_);
  for (;;) {
    // Deliberately not COOL_ASSIGN_OR_RETURN: moving the optional out of
    // the Result trips GCC 12's -Wmaybe-uninitialized on the moved-from
    // buffer's destructor; reading through the Result does not.
    Result<std::optional<ByteBuffer>> next = rx_buffer_.NextMessage();
    if (!next.ok()) return next.status();
    if (next->has_value()) {
      return std::move(**next);
    }
    const Duration remaining = deadline - Now();
    if (remaining <= Duration::zero()) {
      return Status(DeadlineExceededError("receive timed out"));
    }
    rx_buffer_.ReleaseIfDrained();  // idle across the blocking wait below
    std::uint8_t chunk[16 * 1024];
    COOL_ASSIGN_OR_RETURN(std::size_t n, socket_->RecvFor(chunk, remaining));
    rx_buffer_.Append({chunk, n});
  }
}

Result<std::optional<ByteBuffer>> TcpComChannel::TryReceiveMessage() {
  MutexLock lock(rx_mu_);
  for (;;) {
    Result<std::optional<ByteBuffer>> next = rx_buffer_.NextMessage();
    if (!next.ok()) return next.status();
    if (next->has_value()) return next;
    std::uint8_t chunk[16 * 1024];
    Result<std::size_t> n = socket_->TryRecv(chunk);
    if (!n.ok()) {
      // Closed-and-drained: a partially reassembled message can never
      // complete, so surface the close even with residual bytes buffered.
      return n.status();
    }
    if (*n == 0) {
      // Connection went idle: hand the reassembly storage back to the pool
      // until the next burst (no-op while a partial message is pending).
      rx_buffer_.ReleaseIfDrained();
      return std::optional<ByteBuffer>{};  // nothing deliverable
    }
    rx_buffer_.Append({chunk, *n});
  }
}

bool TcpComChannel::RegisterRx(const sim::WaitSet& set, std::uint64_t token) {
  socket_->WatchRecv(set, token);
  return true;
}

void TcpComChannel::Close() { socket_->Close(); }

Status TcpComManager::Listen() {
  COOL_ASSIGN_OR_RETURN(listener_, net_->Listen(addr_));
  return Status::Ok();
}

Result<std::unique_ptr<ComChannel>> TcpComManager::OpenChannel(
    const sim::Address& remote, const qos::QoSSpec& qos) {
  if (!qos.empty()) {
    // Paper §4.3: TCP does not implement setQoSParameter; a QoS-bearing
    // binding cannot be opened over it.
    return Status(
        UnsupportedError("tcp transport cannot satisfy a QoS specification"));
  }
  COOL_ASSIGN_OR_RETURN(std::unique_ptr<sim::StreamSocket> socket,
                        net_->Connect(addr_.host, remote));
  return std::unique_ptr<ComChannel>(
      std::make_unique<TcpComChannel>(std::move(socket)));
}

Result<std::unique_ptr<ComChannel>> TcpComManager::AcceptChannel() {
  if (listener_ == nullptr) {
    return Status(FailedPreconditionError("manager is not listening"));
  }
  COOL_ASSIGN_OR_RETURN(std::unique_ptr<sim::StreamSocket> socket,
                        listener_->Accept());
  return std::unique_ptr<ComChannel>(
      std::make_unique<TcpComChannel>(std::move(socket)));
}

Result<std::unique_ptr<ComChannel>> TcpComManager::TryAcceptChannel() {
  if (listener_ == nullptr) {
    return Status(FailedPreconditionError("manager is not listening"));
  }
  COOL_ASSIGN_OR_RETURN(std::unique_ptr<sim::StreamSocket> socket,
                        listener_->TryAccept());
  if (socket == nullptr) return std::unique_ptr<ComChannel>();
  return std::unique_ptr<ComChannel>(
      std::make_unique<TcpComChannel>(std::move(socket)));
}

bool TcpComManager::RegisterAccept(const sim::WaitSet& set,
                                   std::uint64_t token) {
  if (listener_ == nullptr) return false;
  listener_->WatchAccept(set, token);
  return true;
}

void TcpComManager::Close() {
  if (listener_ != nullptr) listener_->Close();
}

}  // namespace cool::transport
