#include "transport/tcp_channel.h"

namespace cool::transport {

void TcpBuffer::Append(std::span<const std::uint8_t> bytes) {
  data_.insert(data_.end(), bytes.begin(), bytes.end());
}

void TcpBuffer::Compact() {
  if (consumed_ == 0) return;
  data_.erase(data_.begin(), data_.begin() + static_cast<std::ptrdiff_t>(consumed_));
  consumed_ = 0;
}

Result<std::optional<std::vector<std::uint8_t>>> TcpBuffer::NextMessage() {
  if (buffered_bytes() < 4) return std::optional<std::vector<std::uint8_t>>{};
  const std::uint8_t* p = data_.data() + consumed_;
  const std::uint32_t len = static_cast<std::uint32_t>(p[0]) |
                            static_cast<std::uint32_t>(p[1]) << 8 |
                            static_cast<std::uint32_t>(p[2]) << 16 |
                            static_cast<std::uint32_t>(p[3]) << 24;
  if (len > kMaxMessage) {
    return Status(ProtocolError("message length exceeds limit"));
  }
  if (buffered_bytes() < 4 + static_cast<std::size_t>(len)) {
    return std::optional<std::vector<std::uint8_t>>{};
  }
  std::vector<std::uint8_t> msg(p + 4, p + 4 + len);
  consumed_ += 4 + len;
  // Keep the buffer from growing without bound on long-lived channels.
  if (consumed_ > 64 * 1024) Compact();
  return std::optional<std::vector<std::uint8_t>>{std::move(msg)};
}

TcpComChannel::~TcpComChannel() {
  Close();
  DrainAsync();
}

Status TcpComChannel::SendMessage(std::span<const std::uint8_t> message) {
  const std::uint32_t len = static_cast<std::uint32_t>(message.size());
  std::uint8_t prefix[4] = {
      static_cast<std::uint8_t>(len), static_cast<std::uint8_t>(len >> 8),
      static_cast<std::uint8_t>(len >> 16),
      static_cast<std::uint8_t>(len >> 24)};
  MutexLock lock(tx_mu_);
  COOL_RETURN_IF_ERROR(socket_->Send(prefix));
  return socket_->Send(message);
}

Result<ByteBuffer> TcpComChannel::ReceiveMessage(Duration timeout) {
  const TimePoint deadline = Now() + timeout;
  MutexLock lock(rx_mu_);
  for (;;) {
    // Deliberately not COOL_ASSIGN_OR_RETURN: moving the optional out of
    // the Result trips GCC 12's -Wmaybe-uninitialized on the moved-from
    // vector's destructor; reading through the Result does not.
    Result<std::optional<std::vector<std::uint8_t>>> next =
        rx_buffer_.NextMessage();
    if (!next.ok()) return next.status();
    if (next->has_value()) {
      return ByteBuffer(std::move(**next));
    }
    const Duration remaining = deadline - Now();
    if (remaining <= Duration::zero()) {
      return Status(DeadlineExceededError("receive timed out"));
    }
    std::uint8_t chunk[16 * 1024];
    COOL_ASSIGN_OR_RETURN(std::size_t n, socket_->RecvFor(chunk, remaining));
    rx_buffer_.Append({chunk, n});
  }
}

void TcpComChannel::Close() { socket_->Close(); }

Status TcpComManager::Listen() {
  COOL_ASSIGN_OR_RETURN(listener_, net_->Listen(addr_));
  return Status::Ok();
}

Result<std::unique_ptr<ComChannel>> TcpComManager::OpenChannel(
    const sim::Address& remote, const qos::QoSSpec& qos) {
  if (!qos.empty()) {
    // Paper §4.3: TCP does not implement setQoSParameter; a QoS-bearing
    // binding cannot be opened over it.
    return Status(
        UnsupportedError("tcp transport cannot satisfy a QoS specification"));
  }
  COOL_ASSIGN_OR_RETURN(std::unique_ptr<sim::StreamSocket> socket,
                        net_->Connect(addr_.host, remote));
  return std::unique_ptr<ComChannel>(
      std::make_unique<TcpComChannel>(std::move(socket)));
}

Result<std::unique_ptr<ComChannel>> TcpComManager::AcceptChannel() {
  if (listener_ == nullptr) {
    return Status(FailedPreconditionError("manager is not listening"));
  }
  COOL_ASSIGN_OR_RETURN(std::unique_ptr<sim::StreamSocket> socket,
                        listener_->Accept());
  return std::unique_ptr<ComChannel>(
      std::make_unique<TcpComChannel>(std::move(socket)));
}

void TcpComManager::Close() {
  if (listener_ != nullptr) listener_->Close();
}

}  // namespace cool::transport
