// Chorus-IPC-like transport: message-oriented, connectionless at the wire
// but presented as channels after a two-datagram HELLO handshake. Mirrors
// the second transport COOL supports on ChorusOS ("The supported transport
// layer protocols are TCP/IP and Chorus IPC"). Chorus IPC is reliable
// kernel IPC; accordingly this transport must only be deployed on links
// configured without loss (asserted at channel setup).
#pragma once

#include "sim/network.h"
#include "transport/com_channel.h"

namespace cool::transport {

class IpcComChannel : public ComChannel {
 public:
  IpcComChannel(std::unique_ptr<sim::DatagramPort> port, sim::Address peer)
      : port_(std::move(port)), peer_(std::move(peer)) {}
  ~IpcComChannel() override;

  std::string_view protocol() const override { return "ipc"; }

  Status SendMessage(std::span<const std::uint8_t> message) override;
  // Gathered send: one datagram from many parts, no concatenation here.
  Status SendMessageV(
      std::span<const std::span<const std::uint8_t>> parts) override;
  Result<ByteBuffer> ReceiveMessage(Duration timeout) override;
  Result<std::optional<ByteBuffer>> TryReceiveMessage() override;
  bool RegisterRx(const sim::WaitSet& set, std::uint64_t token) override;
  void Close() override;

  const sim::Address& peer() const noexcept { return peer_; }

 private:
  std::unique_ptr<sim::DatagramPort> port_;
  sim::Address peer_;
};

class IpcComManager : public ComManager {
 public:
  IpcComManager(sim::Network* net, sim::Address listen_addr)
      : net_(net), addr_(std::move(listen_addr)) {}

  std::string_view protocol() const override { return "ipc"; }

  Status Listen();

  Result<std::unique_ptr<ComChannel>> OpenChannel(
      const sim::Address& remote, const qos::QoSSpec& qos) override;
  Result<std::unique_ptr<ComChannel>> AcceptChannel() override;
  Result<std::unique_ptr<ComChannel>> TryAcceptChannel() override;
  bool RegisterAccept(const sim::WaitSet& set, std::uint64_t token) override;
  void Close() override;

  const sim::Address& address() const noexcept { return addr_; }

 private:
  sim::Network* net_;
  sim::Address addr_;
  std::unique_ptr<sim::DatagramPort> hello_port_;
};

}  // namespace cool::transport
