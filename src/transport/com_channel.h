// The COOL generic transport protocol layer (paper §2, Fig. 8). The
// abstract class `ComChannel` is our `_COOL_ComChannel`: "the generic
// transport protocol is represented by the _COOL_ComChannel class. The
// actual implementations inherit from this class and implement the virtual
// methods to perform their functionality."
//
// The six invocation-support methods of the paper's `_DacapoComChannel`
// (call / send / reply / defer / notify / cancel) are provided here for
// every transport, implemented over the two message-pipe primitives each
// transport supplies (SendMessage / ReceiveMessage). True multiplexing of
// interleaved requests is the message layer's job (GIOP request_id); a
// channel carries one conversation.
//
// `SetQoSParameter` is the message-layer -> transport-layer interface of
// paper §4.3: "the abstract class defining the generic transport protocol
// is extended with the setQoSParameter method. ... Obviously, TCP does not
// implement the setQoSParameter method, but Da CaPo does."
#pragma once

#include <functional>
#include <optional>
#include <span>
#include <string_view>
#include <unordered_set>
#include <vector>

#include "common/byte_buffer.h"
#include "common/clock.h"
#include "common/intrusive_list.h"
#include "common/mutex.h"
#include "common/status.h"
#include "common/thread.h"
#include "qos/negotiation.h"
#include "qos/qos.h"
#include "sim/address.h"
#include "sim/waitset.h"

namespace cool::transport {

class ComChannel {
 public:
  ComChannel() = default;
  virtual ~ComChannel();

  ComChannel(const ComChannel&) = delete;
  ComChannel& operator=(const ComChannel&) = delete;

  // Transport identity, e.g. "tcp", "ipc", "dacapo".
  virtual std::string_view protocol() const = 0;

  // --- message pipe primitives (implemented by each transport) -----------
  virtual Status SendMessage(std::span<const std::uint8_t> message) = 0;
  virtual Result<ByteBuffer> ReceiveMessage(Duration timeout) = 0;
  virtual void Close() = 0;

  // --- reactor seams (non-blocking receive path) ---------------------------
  // Non-blocking receive: nullopt when no complete message is available
  // right now, kUnavailable once the channel is closed and drained. The
  // reactor drain contract: after a readiness callback, loop until nullopt
  // (signals are edge-ish — one signal may cover several messages). The
  // base returns kUnsupported; transports opt in by overriding BOTH this
  // and RegisterRx. (Deliberately NOT defaulted to ReceiveMessage(0): a
  // zero-timeout blocking receive reports kDeadlineExceeded without pulling
  // ready bytes on some transports, which would break the drain contract.)
  virtual Result<std::optional<ByteBuffer>> TryReceiveMessage() {
    return Status(
        UnsupportedError(std::string(protocol()) +
                         " transport has no non-blocking receive path"));
  }

  // Attaches the channel's receive readiness to `set` under `token`: the
  // set is signalled whenever TryReceiveMessage may make progress (arrival,
  // close). Returns false when the transport does not support watching.
  virtual bool RegisterRx(const sim::WaitSet& set, std::uint64_t token) {
    (void)set;
    (void)token;
    return false;
  }

  // Scatter-gather send: the concatenation of `parts` forms ONE message on
  // the wire, indistinguishable from SendMessage(join(parts)) to the peer.
  // The GIOP engines use this to send {pooled preamble, caller-owned args}
  // without materializing the frame. Transports override this with a true
  // gathered write (writev-style for Tcp/Ipc, multi-part packet fill for
  // Da CaPo); the base implementation gathers into a pooled buffer and
  // falls back to SendMessage.
  virtual Status SendMessageV(
      std::span<const std::span<const std::uint8_t>> parts);

  // --- invocation support (paper Fig. 8 methods) ---------------------------
  // Two-way: sends the request message and waits for the reply message.
  Result<ByteBuffer> Call(std::span<const std::uint8_t> request,
                          Duration timeout = seconds(10));
  // One-way: sends without waiting ("will not wait for a reply").
  Status Send(std::span<const std::uint8_t> request);
  // Server side: sends a reply to a previously received request.
  Status Reply(std::span<const std::uint8_t> reply);

  // Deferred synchronous mode: the reply is collected later via Poll.
  struct Deferred {
    std::uint64_t id = 0;
  };
  Result<Deferred> Defer(std::span<const std::uint8_t> request);
  Result<ByteBuffer> PollDeferred(Deferred handle,
                                  Duration timeout = seconds(10));
  // Asynchronous replies: `callback` runs on an internal thread when the
  // reply (or a transport error) arrives.
  using ReplyCallback = std::function<void(Result<ByteBuffer>)>;
  Status Notify(std::span<const std::uint8_t> request, ReplyCallback callback);
  // Terminates the wait for an asynchronous/deferred reply.
  Status Cancel(Deferred handle);

  // --- QoS (unilateral message->transport negotiation, paper §4.3) ---------
  // Default: refuses any non-empty QoS spec (plain TCP / IPC behaviour).
  virtual Status SetQoSParameter(const qos::QoSSpec& spec);
  // What this transport can guarantee; used by the ORB to pre-screen before
  // sending a Request (and by tests).
  virtual qos::Capability TransportCapability() const;
  // The QoS the transport currently operates under (empty when best-effort).
  virtual qos::QoSSpec CurrentQoS() const { return {}; }

  // Channel registry hook (the `_dlink` of the original class hierarchy;
  // ComManager threads channels into `_dlist`s through it).
  DLink manager_link;

 protected:
  // Joins notify threads; call from derived destructors before members die.
  void DrainAsync();

  // Protected (not private) so derived channels can declare their tx/rx
  // locks COOL_ACQUIRED_AFTER these: Call() holds call_mu_ and Defer()
  // holds async_mu_ across the virtual SendMessage/ReceiveMessage, which
  // take the transport-level locks underneath.
  Mutex call_mu_{LockRank::kChannel, "transport::ComChannel::call_mu_"};  // serializes two-way conversations
  Mutex async_mu_{LockRank::kChannel, "transport::ComChannel::async_mu_"};

 private:
  std::vector<Thread> notify_threads_ COOL_GUARDED_BY(async_mu_);
  std::unordered_set<std::uint64_t> cancelled_ COOL_GUARDED_BY(async_mu_);
  std::uint64_t next_deferred_id_ COOL_GUARDED_BY(async_mu_) = 1;
  bool deferred_outstanding_ COOL_GUARDED_BY(async_mu_) = false;
};

// Base of the per-transport channel managers (`_ComManager` and its
// specializations in Fig. 8). A manager owns the passive endpoint and
// tracks live channels.
class ComManager {
 public:
  virtual ~ComManager() = default;

  ComManager() = default;
  ComManager(const ComManager&) = delete;
  ComManager& operator=(const ComManager&) = delete;

  virtual std::string_view protocol() const = 0;

  // Active open toward a peer's manager address. `qos` may be empty; a
  // transport that cannot satisfy a non-empty spec fails here (unilateral
  // negotiation happens before any byte leaves the node).
  virtual Result<std::unique_ptr<ComChannel>> OpenChannel(
      const sim::Address& remote, const qos::QoSSpec& qos) = 0;

  // Passive open; blocks until a peer connects or the manager closes.
  virtual Result<std::unique_ptr<ComChannel>> AcceptChannel() = 0;

  // Non-blocking accept: a null channel (no error) when nothing is pending,
  // kUnavailable once closed. Same drain contract as TryReceiveMessage.
  // Base refuses; transports opt in by overriding BOTH this and
  // RegisterAccept.
  virtual Result<std::unique_ptr<ComChannel>> TryAcceptChannel() {
    return Status(
        UnsupportedError(std::string(protocol()) +
                         " transport has no non-blocking accept path"));
  }

  // Attaches accept readiness to `set` under `token`; false when the
  // transport does not support watching.
  virtual bool RegisterAccept(const sim::WaitSet& set, std::uint64_t token) {
    (void)set;
    (void)token;
    return false;
  }

  virtual void Close() = 0;
};

}  // namespace cool::transport
