#include "transport/input_callback.h"

namespace cool::transport {

InputCallbackDispatcher::InputCallbackDispatcher() {
  thread_ = Thread([this](std::stop_token st) { Run(st); });
}

InputCallbackDispatcher::~InputCallbackDispatcher() { Stop(); }

InputCallbackDispatcher::Id InputCallbackDispatcher::Register(
    Callback callback) {
  MutexLock lock(mu_);
  const Id id = next_id_++;
  callbacks_[id] = std::move(callback);
  return id;
}

void InputCallbackDispatcher::Unregister(Id id) {
  MutexLock lock(mu_);
  callbacks_.erase(id);
}

Status InputCallbackDispatcher::Trigger(Id id) {
  {
    MutexLock lock(mu_);
    if (!callbacks_.contains(id)) {
      return NotFoundError("unknown input callback id");
    }
  }
  if (!triggers_.Push(id)) {
    return UnavailableError("dispatcher stopped");
  }
  return Status::Ok();
}

void InputCallbackDispatcher::Stop() {
  // Closing the queue lets the dispatcher drain queued triggers and then
  // exit on its own; no stop request, which would drop pending work.
  triggers_.Close();
  if (thread_.joinable()) thread_.join();
}

std::size_t InputCallbackDispatcher::registered_count() const {
  MutexLock lock(mu_);
  return callbacks_.size();
}

void InputCallbackDispatcher::Run(std::stop_token stop) {
  (void)stop;  // lifetime is governed by the queue's close-and-drain
  for (;;) {
    auto id = triggers_.Pop();
    if (!id.has_value()) return;  // closed and drained
    Callback cb;
    {
      MutexLock lock(mu_);
      const auto it = callbacks_.find(*id);
      if (it == callbacks_.end()) continue;
      cb = it->second;  // copy so Unregister during the call is safe
    }
    cb();
  }
}

}  // namespace cool::transport
