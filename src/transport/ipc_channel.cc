#include "transport/ipc_channel.h"

#include <array>
#include <atomic>

namespace cool::transport {

namespace {

// HELLO wire format: magic 'I''P''C' + kind octet + u16 LE channel port.
constexpr std::uint8_t kHello = 1;
constexpr std::uint8_t kHelloAck = 2;
constexpr std::size_t kHelloSize = 6;

std::uint16_t AllocIpcPort() {
  static std::atomic<std::uint16_t> next{30000};
  return next.fetch_add(1);
}

std::array<std::uint8_t, kHelloSize> EncodeHello(std::uint8_t kind,
                                                 std::uint16_t port) {
  return {'I', 'P', 'C', kind, static_cast<std::uint8_t>(port),
          static_cast<std::uint8_t>(port >> 8)};
}

Result<std::pair<std::uint8_t, std::uint16_t>> DecodeHello(
    std::span<const std::uint8_t> payload) {
  if (payload.size() != kHelloSize || payload[0] != 'I' ||
      payload[1] != 'P' || payload[2] != 'C') {
    return Status(ProtocolError("malformed IPC HELLO"));
  }
  const std::uint16_t port = static_cast<std::uint16_t>(payload[4]) |
                             static_cast<std::uint16_t>(payload[5]) << 8;
  return std::make_pair(payload[3], port);
}

}  // namespace

IpcComChannel::~IpcComChannel() {
  Close();
  DrainAsync();
}

Status IpcComChannel::SendMessage(std::span<const std::uint8_t> message) {
  return port_->SendTo(peer_, message);
}

Status IpcComChannel::SendMessageV(
    std::span<const std::span<const std::uint8_t>> parts) {
  return port_->SendToV(peer_, parts);
}

Result<ByteBuffer> IpcComChannel::ReceiveMessage(Duration timeout) {
  for (;;) {
    auto dgram = port_->RecvFor(timeout);
    if (!dgram.has_value()) {
      // A closed-and-drained port used to read as a timeout here, which
      // left pollers (the GIOP demux reader) spinning through their full
      // quantum after Close(); report the close as terminal instead.
      if (port_->depleted()) {
        return Status(UnavailableError("IPC channel closed"));
      }
      return Status(DeadlineExceededError("IPC receive timed out"));
    }
    if (dgram->from != peer_) continue;  // stray datagram: not our peer
    return ByteBuffer(std::move(dgram->payload));
  }
}

Result<std::optional<ByteBuffer>> IpcComChannel::TryReceiveMessage() {
  for (;;) {
    std::optional<sim::Datagram> dgram = port_->TryRecv();
    if (!dgram.has_value()) {
      if (port_->depleted()) {
        return Status(UnavailableError("IPC channel closed"));
      }
      return std::optional<ByteBuffer>{};
    }
    if (dgram->from != peer_) continue;  // stray datagram: not our peer
    return std::optional<ByteBuffer>{ByteBuffer(std::move(dgram->payload))};
  }
}

bool IpcComChannel::RegisterRx(const sim::WaitSet& set, std::uint64_t token) {
  port_->WatchRecv(set, token);
  return true;
}

void IpcComChannel::Close() { port_->Close(); }

Status IpcComManager::Listen() {
  COOL_ASSIGN_OR_RETURN(hello_port_, net_->OpenPort(addr_));
  return Status::Ok();
}

Result<std::unique_ptr<ComChannel>> IpcComManager::OpenChannel(
    const sim::Address& remote, const qos::QoSSpec& qos) {
  if (!qos.empty()) {
    return Status(
        UnsupportedError("ipc transport cannot satisfy a QoS specification"));
  }
  const std::uint16_t local_port = AllocIpcPort();
  COOL_ASSIGN_OR_RETURN(std::unique_ptr<sim::DatagramPort> port,
                        net_->OpenPort({addr_.host, local_port}));

  // Chorus IPC is reliable; our HELLO still retries a few times so a
  // mis-configured lossy link fails loudly instead of hanging.
  for (int attempt = 0; attempt < 3; ++attempt) {
    COOL_RETURN_IF_ERROR(
        port->SendTo(remote, EncodeHello(kHello, local_port)));
    auto reply = port->RecvFor(milliseconds(250));
    if (!reply.has_value()) continue;
    COOL_ASSIGN_OR_RETURN(auto decoded, DecodeHello(reply->payload));
    const auto& [kind, peer_port] = decoded;
    if (kind != kHelloAck) continue;
    return std::unique_ptr<ComChannel>(std::make_unique<IpcComChannel>(
        std::move(port), sim::Address{remote.host, peer_port}));
  }
  return Status(UnavailableError("IPC handshake failed: " +
                                 remote.ToString() + " not answering"));
}

Result<std::unique_ptr<ComChannel>> IpcComManager::AcceptChannel() {
  if (hello_port_ == nullptr) {
    return Status(FailedPreconditionError("manager is not listening"));
  }
  for (;;) {
    auto dgram = hello_port_->Recv();
    if (!dgram.has_value()) {
      return Status(UnavailableError("IPC manager closed"));
    }
    auto decoded = DecodeHello(dgram->payload);
    if (!decoded.ok() || decoded->first != kHello) continue;

    const std::uint16_t channel_port = AllocIpcPort();
    COOL_ASSIGN_OR_RETURN(std::unique_ptr<sim::DatagramPort> port,
                          net_->OpenPort({addr_.host, channel_port}));
    const sim::Address peer{dgram->from.host, decoded->second};
    COOL_RETURN_IF_ERROR(
        port->SendTo(peer, EncodeHello(kHelloAck, channel_port)));
    return std::unique_ptr<ComChannel>(
        std::make_unique<IpcComChannel>(std::move(port), peer));
  }
}

Result<std::unique_ptr<ComChannel>> IpcComManager::TryAcceptChannel() {
  if (hello_port_ == nullptr) {
    return Status(FailedPreconditionError("manager is not listening"));
  }
  for (;;) {
    std::optional<sim::Datagram> dgram = hello_port_->TryRecv();
    if (!dgram.has_value()) {
      if (hello_port_->depleted()) {
        return Status(UnavailableError("IPC manager closed"));
      }
      return std::unique_ptr<ComChannel>();
    }
    auto decoded = DecodeHello(dgram->payload);
    if (!decoded.ok() || decoded->first != kHello) continue;

    const std::uint16_t channel_port = AllocIpcPort();
    COOL_ASSIGN_OR_RETURN(std::unique_ptr<sim::DatagramPort> port,
                          net_->OpenPort({addr_.host, channel_port}));
    const sim::Address peer{dgram->from.host, decoded->second};
    COOL_RETURN_IF_ERROR(
        port->SendTo(peer, EncodeHello(kHelloAck, channel_port)));
    return std::unique_ptr<ComChannel>(
        std::make_unique<IpcComChannel>(std::move(port), peer));
  }
}

bool IpcComManager::RegisterAccept(const sim::WaitSet& set,
                                   std::uint64_t token) {
  if (hello_port_ == nullptr) return false;
  hello_port_->WatchRecv(set, token);
  return true;
}

void IpcComManager::Close() {
  if (hello_port_ != nullptr) hello_port_->Close();
}

}  // namespace cool::transport
