#include "transport/dacapo_channel.h"

#include <algorithm>

#include "common/deadlock.h"
#include "common/logging.h"
#include "qos/classify.h"
#include "qos/mapping.h"

namespace cool::transport {

DacapoComChannel::~DacapoComChannel() {
  Close();
  DrainAsync();
}

namespace {
// Fragment header octet: 1 = more fragments of this message follow.
constexpr std::uint8_t kMoreFragments = 1;
constexpr std::uint8_t kLastFragment = 0;

// Pairs every granted egress turn with its Release across all of the send
// paths' returns.
class EgressGrant {
 public:
  // Null scheduler = egress not attached; the grant is a no-op that always
  // admits.
  EgressGrant(EgressScheduler* egress, std::uint64_t binding,
              std::size_t bytes)
      : egress_(egress),
        admitted_(egress == nullptr || egress->Acquire(binding, bytes)) {}
  ~EgressGrant() {
    if (egress_ != nullptr && admitted_) egress_->Release();
  }
  EgressGrant(const EgressGrant&) = delete;
  EgressGrant& operator=(const EgressGrant&) = delete;

  bool admitted() const noexcept { return admitted_; }

 private:
  EgressScheduler* egress_;
  bool admitted_;
};
}  // namespace

void DacapoComChannel::AttachEgress(EgressScheduler* egress) {
  if (egress != nullptr) {
    egress->RegisterBinding(
        egress_id_, qos::ClassifyForScheduling(CurrentQoS().parameters()));
  }
  egress_.store(egress, std::memory_order_release);
}

Status DacapoComChannel::SendMessage(std::span<const std::uint8_t> message) {
  EgressGrant grant(egress_.load(std::memory_order_acquire), egress_id_,
                    message.size());
  if (!grant.admitted()) {
    return Status(UnavailableError("dacapo egress scheduler shed the send"));
  }
  // Direct single-span paths rather than delegating to SendMessageV: this
  // is the hottest per-message path (every non-gathered send), and the
  // part-cursor bookkeeping costs a measurable fraction of a small-message
  // send on a fast link.
  const std::size_t max_payload = session_->packet_capacity() - 1;
  const std::size_t fragments =
      message.empty() ? 1 : (message.size() + max_payload - 1) / max_payload;
  MutexLock lock(tx_mu_);
  if (fragments == 1) {
    return session_->SendWith(
        message.size() + 1, [message](std::span<std::uint8_t> out) {
          out[0] = kLastFragment;
          std::copy(message.begin(), message.end(), out.begin() + 1);
          return Status::Ok();
        });
  }
  // Multi-fragment: the whole message enters the chain as packet trains —
  // one mailbox round-trip per burst instead of one per fragment.
  return session_->SendTrainWith(
      fragments,
      [&](std::size_t i) {
        return std::min(max_payload, message.size() - i * max_payload) + 1;
      },
      [&](std::size_t i, std::span<std::uint8_t> out) {
        const auto piece = message.subspan(i * max_payload, out.size() - 1);
        out[0] = i + 1 < fragments ? kMoreFragments : kLastFragment;
        std::copy(piece.begin(), piece.end(), out.begin() + 1);
        return Status::Ok();
      });
}

Status DacapoComChannel::SendMessageV(
    std::span<const std::span<const std::uint8_t>> parts) {
  const std::size_t max_payload = session_->packet_capacity() - 1;
  std::size_t total = 0;
  for (const auto& part : parts) total += part.size();

  EgressGrant grant(egress_.load(std::memory_order_acquire), egress_id_,
                    total);
  if (!grant.admitted()) {
    return Status(UnavailableError("dacapo egress scheduler shed the send"));
  }

  const std::size_t fragments =
      total == 0 ? 1 : (total + max_payload - 1) / max_payload;
  MutexLock lock(tx_mu_);
  // Cursor over the concatenation of `parts`: fragments are filled straight
  // into the arena packet, crossing part boundaries as needed — no joined
  // staging vector, no per-fragment staging vector. SendTrainWith calls the
  // callbacks strictly in order, so the cursor advances monotonically.
  std::size_t part_idx = 0;
  std::size_t part_off = 0;
  std::size_t sent = 0;
  return session_->SendTrainWith(
      fragments,
      [&](std::size_t) { return std::min(max_payload, total - sent) + 1; },
      [&](std::size_t i, std::span<std::uint8_t> out) {
        const std::size_t n = out.size() - 1;
        out[0] = i + 1 < fragments ? kMoreFragments : kLastFragment;
        std::size_t filled = 0;
        while (filled < n) {
          while (part_off == parts[part_idx].size()) {
            ++part_idx;
            part_off = 0;
          }
          const auto piece = parts[part_idx].subspan(
              part_off,
              std::min(n - filled, parts[part_idx].size() - part_off));
          std::copy(piece.begin(), piece.end(),
                    out.begin() + 1 + static_cast<std::ptrdiff_t>(filled));
          part_off += piece.size();
          filled += piece.size();
        }
        sent += n;
        return Status::Ok();
      });
}

Result<ByteBuffer> DacapoComChannel::ReceiveMessage(Duration timeout) {
  const TimePoint deadline = DeadlineFor(timeout);
  MutexLock lock(rx_mu_);
  for (;;) {
    // The caller's deadline only gates the wait for a message to *start*.
    // Once the first fragment is in, continuation fragments get their own
    // floor: a short-quantum poller must not abandon a half-assembled
    // message — the remaining fragments would desynchronize the stream.
    Duration remaining = deadline - Now();
    if (rx_partial_active_) {
      remaining = std::max<Duration>(remaining, seconds(1));
    }
    COOL_ASSIGN_OR_RETURN(dacapo::ReceivedMessage fragment,
                          session_->ReceivePacket(remaining));
    COOL_ASSIGN_OR_RETURN(std::optional<ByteBuffer> done,
                          ConsumeFragmentLocked(fragment));
    if (done.has_value()) return std::move(*done);
  }
}

Result<std::optional<ByteBuffer>> DacapoComChannel::TryReceiveMessage() {
  MutexLock lock(rx_mu_);
  for (;;) {
    Result<dacapo::ReceivedMessage> fragment = session_->TryReceivePacket();
    if (!fragment.ok()) {
      // Closed-and-drained: a half-assembled message can never complete,
      // so surface the close even with a partial buffered.
      return fragment.status();
    }
    if (!*fragment) return std::optional<ByteBuffer>{};  // nothing queued
    COOL_ASSIGN_OR_RETURN(std::optional<ByteBuffer> done,
                          ConsumeFragmentLocked(*fragment));
    if (done.has_value()) return done;
  }
}

Result<std::optional<ByteBuffer>> DacapoComChannel::ConsumeFragmentLocked(
    const dacapo::ReceivedMessage& fragment) {
  const auto data = fragment.data();
  if (data.empty()) {
    return Status(ProtocolError("empty Da CaPo fragment"));
  }
  const std::uint8_t flags = data.front();
  if (flags > kMoreFragments) {
    return Status(ProtocolError("bad fragment header"));
  }
  rx_partial_.Append(data.subspan(1));
  if (flags == kMoreFragments) {
    rx_partial_active_ = true;
    return std::optional<ByteBuffer>{};
  }
  rx_partial_active_ = false;
  ByteBuffer out = std::move(rx_partial_);
  rx_partial_ = ByteBuffer();
  return std::optional<ByteBuffer>{std::move(out)};
}

bool DacapoComChannel::RegisterRx(const sim::WaitSet& set,
                                  std::uint64_t token) {
  session_->WatchRx(set, token);
  return true;
}

void DacapoComChannel::Close() {
  // Detach from the egress scheduler first: parked sends of this binding
  // wake refused instead of waiting on a closing session.
  if (EgressScheduler* egress =
          egress_.exchange(nullptr, std::memory_order_acq_rel)) {
    egress->UnregisterBinding(egress_id_);
  }
  session_->Close();
}

qos::Capability DacapoComChannel::CapabilityFor(
    const dacapo::NetworkEstimate& est) {
  qos::Capability cap;
  cap.SetBest(qos::ParamType::kThroughputKbps,
              static_cast<corba::Long>(est.bandwidth_bps / 1000));
  cap.SetBest(qos::ParamType::kLatencyMicros,
              static_cast<corba::Long>(est.rtt_us / 2));
  cap.SetBest(qos::ParamType::kJitterMicros,
              static_cast<corba::Long>(est.rtt_us / 4 + 1));
  cap.SetBest(qos::ParamType::kReliability, 2);  // ARQ mechanisms available
  cap.SetBest(qos::ParamType::kOrdering, 1);
  cap.SetBest(qos::ParamType::kEncryption, 1);
  cap.SetBest(qos::ParamType::kLossPermille, 0);  // with retransmission
  cap.SetBest(qos::ParamType::kPriority, 255);
  return cap;
}

qos::Capability DacapoComChannel::TransportCapability() const {
  return CapabilityFor(estimate_);
}

qos::QoSSpec DacapoComChannel::CurrentQoS() const {
  MutexLock lock(qos_mu_);
  return current_qos_;
}

Status DacapoComChannel::SetQoSParameter(const qos::QoSSpec& spec) {
  // Unilateral negotiation (paper §4.3): the transport either maps the QoS
  // to a protocol configuration + resources, or refuses.
  const qos::ProtocolRequirements req = qos::MapToProtocolRequirements(spec);
  dacapo::ConfigurationManager config;
  COOL_ASSIGN_OR_RETURN(dacapo::ConfiguredGraph graph,
                        config.Configure(req, estimate_));

  bool same_graph = false;
  {
    MutexLock lock(qos_mu_);
    if (graph.spec == session_->graph()) {
      // Same module graph satisfies the new spec: nothing to rebuild.
      current_qos_ = spec;
      same_graph = true;
    }
  }
  if (!same_graph) {
    COOL_LOG(kInfo, "transport")
        << "dacapo reconfiguration for QoS " << spec.ToString() << " -> "
        << graph.spec.ToString();
    COOL_RETURN_IF_ERROR(session_->Reconfigure(graph.spec));
    MutexLock lock(qos_mu_);
    current_qos_ = spec;
  }
  // The renegotiated contract follows into the egress arbitration: the
  // binding's band/weight/rate profile tracks the live QoS spec.
  if (EgressScheduler* egress = egress_.load(std::memory_order_acquire)) {
    egress->RegisterBinding(egress_id_,
                            qos::ClassifyForScheduling(spec.parameters()));
  }
  return Status::Ok();
}

Result<std::unique_ptr<ComChannel>> DacapoComManager::OpenChannel(
    const sim::Address& remote, const qos::QoSSpec& qos) {
  dacapo::ChannelOptions options;
  options.transport = dacapo::ChannelOptions::Transport::kStream;
  if (!qos.empty()) {
    const qos::ProtocolRequirements req = qos::MapToProtocolRequirements(qos);
    dacapo::ConfigurationManager config;
    dacapo::NetworkEstimate est = estimate_;
    est.transport_reliable = true;  // stream T service underneath
    COOL_ASSIGN_OR_RETURN(dacapo::ConfiguredGraph graph,
                          config.Configure(req, est));
    options.graph = graph.spec;
  }
  dacapo::Connector connector(net_, acceptor_.address().host);
  COOL_ASSIGN_OR_RETURN(std::unique_ptr<dacapo::Session> session,
                        connector.Connect(remote, options));
  return std::unique_ptr<ComChannel>(std::make_unique<DacapoComChannel>(
      std::move(session), estimate_, qos));
}

Result<std::unique_ptr<ComChannel>> DacapoComManager::AcceptChannel() {
  COOL_ASSIGN_OR_RETURN(std::unique_ptr<dacapo::Session> session,
                        acceptor_.Accept(dacapo::AppAModule::DeliveryMode::kQueue));
  return std::unique_ptr<ComChannel>(std::make_unique<DacapoComChannel>(
      std::move(session), estimate_, qos::QoSSpec{}));
}

Result<std::unique_ptr<ComChannel>> DacapoComManager::TryAcceptChannel() {
  // Bounded by design: TryAccept only runs the setup handshake when a
  // connection is already pending, the initiator sends CONFIG immediately
  // after connecting, and every recv inside carries kHandshakeTimeout. A
  // reactor accept callback may therefore ride it out (DESIGN.md §11).
  deadlock::ScopedBlockingAllowed handshake_is_bounded;
  COOL_ASSIGN_OR_RETURN(
      std::unique_ptr<dacapo::Session> session,
      acceptor_.TryAccept(dacapo::AppAModule::DeliveryMode::kQueue));
  if (session == nullptr) return std::unique_ptr<ComChannel>();
  return std::unique_ptr<ComChannel>(std::make_unique<DacapoComChannel>(
      std::move(session), estimate_, qos::QoSSpec{}));
}

bool DacapoComManager::RegisterAccept(const sim::WaitSet& set,
                                      std::uint64_t token) {
  return acceptor_.WatchAccept(set, token);
}

}  // namespace cool::transport
