// Kernel-fd readiness forwarder: the epoll-backed equivalent of the sim
// WaitSet for real sockets/pipes. One thread blocks in epoll_wait and
// forwards each ready token to a callback (the Reactor turns that into a
// Schedule() onto the token's owning worker). Registration is
// edge-triggered, so consumers must drain until EAGAIN before re-arming —
// the same drain contract the sim Try* paths follow.
#pragma once

#include <cstdint>
#include <functional>

#include "common/mutex.h"
#include "common/status.h"
#include "common/thread.h"

namespace cool::transport {

class EpollPoller {
 public:
  using ReadyFn = std::function<void(std::uint64_t token)>;

  // `on_ready` is invoked on the poller thread; it must not block.
  explicit EpollPoller(ReadyFn on_ready);
  ~EpollPoller();

  EpollPoller(const EpollPoller&) = delete;
  EpollPoller& operator=(const EpollPoller&) = delete;

  // True when epoll/eventfd setup succeeded and the poller thread runs.
  bool valid() const noexcept { return epoll_fd_ >= 0; }

  // Watches `fd` for read readiness / hangup (edge-triggered); events are
  // reported as `on_ready(token)`. The fd stays owned by the caller.
  Status Watch(int fd, std::uint64_t token);
  void Unwatch(int fd);

 private:
  void Loop(std::stop_token stop);

  int epoll_fd_ = -1;
  int wake_fd_ = -1;  // eventfd: interrupts epoll_wait for shutdown
  ReadyFn on_ready_;
  Thread thread_;
};

}  // namespace cool::transport
