// TCP transport under the generic transport layer. `TcpBuffer` is the
// `_TcpBuffer` of the paper's Fig. 8 ("the TCP/IP implementation needs to
// handle buffer management"): it reassembles length-prefixed messages from
// the byte stream. Plain TCP offers no QoS — SetQoSParameter keeps the base
// class's refusal, exactly the paper's point.
#pragma once

#include <optional>
#include <vector>

#include "common/buffer_pool.h"
#include "common/mutex.h"
#include "sim/network.h"
#include "transport/com_channel.h"

namespace cool::transport {

class TcpBuffer {
 public:
  // Feeds raw stream octets into the reassembly buffer. The backing store
  // is leased lazily from the shared BufferPool on the first octet — an
  // idle connection holds no receive buffer at all (the per-connection
  // memory diet for 100k-connection servers).
  void Append(std::span<const std::uint8_t> bytes);

  // Extracts the next complete message (in a pooled buffer, so the
  // steady-state receive path allocates nothing), or nullopt if more
  // stream data is needed. Fails with kProtocolError on an implausible
  // length prefix.
  Result<std::optional<ByteBuffer>> NextMessage();

  // Returns the pooled backing store once every buffered octet has been
  // consumed. Called when the owning channel's drain loop goes idle — NOT
  // after every message, so an active burst keeps its lease warm.
  void ReleaseIfDrained();

  std::size_t buffered_bytes() const noexcept { return data_.size() - consumed_; }
  // True when no backing store is held (tests for the lazy-lease contract).
  bool idle() const noexcept { return data_.empty(); }

  static constexpr std::size_t kMaxMessage = 16 * 1024 * 1024;

 private:
  void Compact();

  // Pool-homed reassembly storage (rule 15: no unpooled per-connection
  // buffer members); empty <=> no heap held.
  ByteBuffer data_;
  std::size_t consumed_ = 0;
};

class TcpComChannel : public ComChannel {
 public:
  explicit TcpComChannel(std::unique_ptr<sim::StreamSocket> socket)
      : socket_(std::move(socket)) {}
  ~TcpComChannel() override;

  std::string_view protocol() const override { return "tcp"; }

  Status SendMessage(std::span<const std::uint8_t> message) override;
  // True gathered write: {length prefix, parts...} leave in one paced
  // stream write, so a preamble+args pair costs no concatenation.
  Status SendMessageV(
      std::span<const std::span<const std::uint8_t>> parts) override;
  Result<ByteBuffer> ReceiveMessage(Duration timeout) override;
  Result<std::optional<ByteBuffer>> TryReceiveMessage() override;
  bool RegisterRx(const sim::WaitSet& set, std::uint64_t token) override;
  void Close() override;

 private:
  std::unique_ptr<sim::StreamSocket> socket_;
  Mutex tx_mu_ COOL_ACQUIRED_AFTER(call_mu_, async_mu_) {
      LockRank::kChannel, "transport::TcpComChannel::tx_mu_"};
  Mutex rx_mu_ COOL_ACQUIRED_AFTER(call_mu_) {
      LockRank::kChannel, "transport::TcpComChannel::rx_mu_"};
  TcpBuffer rx_buffer_ COOL_GUARDED_BY(rx_mu_);
};

class TcpComManager : public ComManager {
 public:
  // Passive address; Listen() must be called before AcceptChannel.
  TcpComManager(sim::Network* net, sim::Address listen_addr)
      : net_(net), addr_(std::move(listen_addr)) {}

  std::string_view protocol() const override { return "tcp"; }

  Status Listen();

  Result<std::unique_ptr<ComChannel>> OpenChannel(
      const sim::Address& remote, const qos::QoSSpec& qos) override;
  Result<std::unique_ptr<ComChannel>> AcceptChannel() override;
  Result<std::unique_ptr<ComChannel>> TryAcceptChannel() override;
  bool RegisterAccept(const sim::WaitSet& set, std::uint64_t token) override;
  void Close() override;

  const sim::Address& address() const noexcept { return addr_; }

 private:
  sim::Network* net_;
  sim::Address addr_;
  std::unique_ptr<sim::Listener> listener_;
};

}  // namespace cool::transport
