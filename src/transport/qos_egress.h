// Weighted-fair egress arbitration for bindings sharing one host's Da CaPo
// link. The server dispatch pool keeps a bursty tenant from monopolising
// the upcall workers; this is the same hierarchical scheduler
// (common/qos_sched.h) mounted on the *transmit* side, so the packet
// trains of concurrent bindings interleave weighted-fairly instead of
// first-grabbed-lock-wins (paper §4.2: QoS semantics must survive the
// shared endsystem resources, and the link is one of them).
//
// No threads of its own — a turnstile: a sender asks Acquire(binding,
// bytes) for its turn, parks on a per-ticket CondVar while the traffic-
// class tree arbitrates (WFQ across bands, DRR across bindings, optional
// CoDel on the waiting tickets), transmits when granted, then Release()
// hands the link to the next ticket. Uncontended sends take one mutex and
// go straight through.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/mutex.h"
#include "common/qos_sched.h"
#include "qos/classify.h"

namespace cool::transport {

class EgressScheduler {
 public:
  struct Options {
    // WFQ weights of the High/Normal/Low bands (mirrors the dispatch
    // pool's defaults: High outweighs Low 8:1, Low never starves).
    std::array<std::uint32_t, 3> class_weights{8, 4, 1};
    // DRR quantum among bindings, in bytes of message payload.
    std::uint32_t quantum_bytes = 4096;
    // CoDel AQM on the waiting tickets. Off by default: a shed ticket
    // surfaces as an UnavailableError to the sender, a policy the ORB
    // owner opts into (README "qos_scheduler" knobs).
    bool codel_enabled = false;
    Duration codel_target = milliseconds(5);
    Duration codel_interval = milliseconds(100);
  };

  // Scheduling cost floor per message (header + per-send overhead), added
  // to the payload bytes so empty messages still pay their turn.
  static constexpr std::size_t kMessageBaseCost = 64;

  EgressScheduler() : EgressScheduler(Options{}) {}
  explicit EgressScheduler(const Options& options);
  ~EgressScheduler();

  EgressScheduler(const EgressScheduler&) = delete;
  EgressScheduler& operator=(const EgressScheduler&) = delete;

  // Process-unique binding id for Register/Acquire/Unregister.
  static std::uint64_t AllocBindingId();

  // Declares (or re-declares) a binding's scheduling profile: band picks
  // the WFQ class, weight scales its DRR quantum, rate caps its bytes/s
  // with a token bucket. Unknown bindings that Acquire without
  // registering ride the Normal band at weight 1.
  void RegisterBinding(std::uint64_t binding_id,
                       const qos::SchedProfile& profile);
  // Forgets the binding; parked tickets of the binding are released as
  // not-granted (their senders see the scheduler refuse).
  void UnregisterBinding(std::uint64_t binding_id);

  // Blocks until it is this binding's turn to put `bytes` on the link.
  // True = granted; the caller MUST pair it with Release() after the
  // send. False = the scheduler is closed, the binding was unregistered
  // mid-wait, or CoDel shed the ticket — nothing to release.
  bool Acquire(std::uint64_t binding_id, std::size_t bytes);
  // Returns the link and wakes the next ticket in scheduling order.
  void Release();

  // Live reconfiguration (applies from the next arbitration).
  void SetClassWeight(qos::SchedProfile::Band band, std::uint32_t weight);
  void SetCodel(bool enabled, Duration target, Duration interval);

  // Releases every parked ticket as refused; subsequent Acquires fail.
  void Close();

  std::uint64_t grants() const noexcept {
    return grants_.load(std::memory_order_relaxed);
  }
  std::uint64_t sheds() const noexcept {
    return sheds_.load(std::memory_order_relaxed);
  }

  // Per-band scheduler counters + ticket-wait percentiles (High, Normal,
  // Low order; the synthetic root is omitted).
  std::vector<sched::ClassSnapshot> StatsSnapshot() const;
  std::string DescribeStats() const;

 private:
  // One parked sender. Stack-allocated in Acquire; the tree holds the
  // pointer only while the ticket is queued, and the owning thread never
  // leaves Acquire while it is.
  struct Ticket {
    CondVar cv;
    enum class State { kWaiting, kGranted, kRefused } state = State::kWaiting;
  };
  using Tree = sched::TrafficClassTree<Ticket*>;

  // Pops tickets while the link is free: refused (AQM) tickets are marked
  // kRefused, the granted one takes the link as kGranted. Returns the
  // tickets to notify — the caller wakes them under its visible lock.
  std::vector<Ticket*> ServeLocked(TimePoint now) COOL_REQUIRES(mu_);
  sched::ClassOptions BandOptions(std::size_t band) const COOL_REQUIRES(mu_);

  Options options_;
  std::atomic<std::uint64_t> grants_{0};
  std::atomic<std::uint64_t> sheds_{0};

  mutable Mutex mu_{LockRank::kChannel, "transport::EgressScheduler::mu_"};
  Tree tree_ COOL_GUARDED_BY(mu_){};
  std::array<Tree::ClassId, 3> cls_id_ COOL_GUARDED_BY(mu_){};
  std::unordered_map<std::uint64_t, qos::SchedProfile> profiles_
      COOL_GUARDED_BY(mu_);
  bool busy_ COOL_GUARDED_BY(mu_) = false;  // a granted sender owns the link
  bool closed_ COOL_GUARDED_BY(mu_) = false;
};

}  // namespace cool::transport
