#include "qos/qos.h"

#include <algorithm>
#include <sstream>

namespace cool::qos {

Direction DirectionOf(ParamType type) noexcept {
  switch (type) {
    case ParamType::kThroughputKbps:
    case ParamType::kReliability:
    case ParamType::kOrdering:
    case ParamType::kEncryption:
    case ParamType::kPriority:
      return Direction::kHigherIsBetter;
    case ParamType::kLatencyMicros:
    case ParamType::kJitterMicros:
    case ParamType::kLossPermille:
      return Direction::kLowerIsBetter;
  }
  return Direction::kHigherIsBetter;
}

std::string_view ParamTypeName(ParamType type) noexcept {
  switch (type) {
    case ParamType::kThroughputKbps: return "throughput_kbps";
    case ParamType::kLatencyMicros: return "latency_us";
    case ParamType::kJitterMicros: return "jitter_us";
    case ParamType::kReliability: return "reliability";
    case ParamType::kOrdering: return "ordering";
    case ParamType::kEncryption: return "encryption";
    case ParamType::kLossPermille: return "loss_permille";
    case ParamType::kPriority: return "priority";
  }
  return "unknown";
}

bool IsKnownParamType(corba::ULong raw) noexcept {
  return raw >= static_cast<corba::ULong>(ParamType::kThroughputKbps) &&
         raw <= static_cast<corba::ULong>(ParamType::kPriority);
}

bool QoSParameter::Accepts(corba::Long value) const noexcept {
  if (value < 0) return false;
  if (min_value != kUnbounded && value < min_value) return false;
  if (max_value != kUnbounded && value > max_value) return false;
  return true;
}

std::string QoSParameter::ToString() const {
  std::ostringstream os;
  if (IsKnownParamType(param_type)) {
    os << ParamTypeName(type());
  } else {
    os << "param#" << param_type;
  }
  os << "{req=" << request_value << ", min=";
  if (min_value == kUnbounded) {
    os << "-";
  } else {
    os << min_value;
  }
  os << ", max=";
  if (max_value == kUnbounded) {
    os << "-";
  } else {
    os << max_value;
  }
  os << "}";
  return os.str();
}

namespace {

QoSParameter Make(ParamType type, corba::ULong request, corba::Long min_v,
                  corba::Long max_v) {
  QoSParameter p;
  p.param_type = static_cast<corba::ULong>(type);
  p.request_value = request;
  p.min_value = min_v;
  p.max_value = max_v;
  return p;
}

}  // namespace

QoSParameter RequireThroughputKbps(corba::ULong request, corba::Long min_ok) {
  return Make(ParamType::kThroughputKbps, request, min_ok, kUnbounded);
}
QoSParameter RequireLatencyMicros(corba::ULong request, corba::Long max_ok) {
  return Make(ParamType::kLatencyMicros, request, kUnbounded, max_ok);
}
QoSParameter RequireJitterMicros(corba::ULong request, corba::Long max_ok) {
  return Make(ParamType::kJitterMicros, request, kUnbounded, max_ok);
}
QoSParameter RequireReliability(corba::ULong level) {
  return Make(ParamType::kReliability, level,
              static_cast<corba::Long>(level), kUnbounded);
}
QoSParameter RequireOrdering(bool ordered) {
  const corba::ULong v = ordered ? 1 : 0;
  return Make(ParamType::kOrdering, v, static_cast<corba::Long>(v),
              kUnbounded);
}
QoSParameter RequireEncryption(bool encrypted) {
  const corba::ULong v = encrypted ? 1 : 0;
  return Make(ParamType::kEncryption, v, static_cast<corba::Long>(v),
              kUnbounded);
}
QoSParameter RequireLossPermille(corba::ULong request, corba::Long max_ok) {
  return Make(ParamType::kLossPermille, request, kUnbounded, max_ok);
}
QoSParameter RequirePriority(corba::ULong level) {
  return Make(ParamType::kPriority, level, kUnbounded, kUnbounded);
}

void EncodeQoSParameter(cdr::Encoder& enc, const QoSParameter& p) {
  enc.PutULong(p.param_type);
  enc.PutULong(p.request_value);
  enc.PutLong(p.max_value);
  enc.PutLong(p.min_value);
}

Result<QoSParameter> DecodeQoSParameter(cdr::Decoder& dec) {
  QoSParameter p;
  COOL_ASSIGN_OR_RETURN(p.param_type, dec.GetULong());
  COOL_ASSIGN_OR_RETURN(p.request_value, dec.GetULong());
  COOL_ASSIGN_OR_RETURN(p.max_value, dec.GetLong());
  COOL_ASSIGN_OR_RETURN(p.min_value, dec.GetLong());
  return p;
}

void EncodeQoSParameterSeq(cdr::Encoder& enc,
                           const std::vector<QoSParameter>& seq) {
  enc.PutULong(static_cast<corba::ULong>(seq.size()));
  for (const QoSParameter& p : seq) EncodeQoSParameter(enc, p);
}

Result<std::vector<QoSParameter>> DecodeQoSParameterSeq(cdr::Decoder& dec) {
  COOL_ASSIGN_OR_RETURN(corba::ULong count, dec.GetULong());
  // Each parameter occupies 16 octets on the wire; a count larger than the
  // remaining payload is a framing attack / corruption.
  if (count > dec.remaining() / 16) {
    return Status(ProtocolError("qos_params count exceeds message size"));
  }
  std::vector<QoSParameter> seq;
  seq.reserve(count);
  for (corba::ULong i = 0; i < count; ++i) {
    COOL_ASSIGN_OR_RETURN(QoSParameter p, DecodeQoSParameter(dec));
    seq.push_back(p);
  }
  return seq;
}

Result<QoSSpec> QoSSpec::FromParameters(std::vector<QoSParameter> params) {
  for (std::size_t i = 0; i < params.size(); ++i) {
    const QoSParameter& p = params[i];
    for (std::size_t j = i + 1; j < params.size(); ++j) {
      if (params[j].param_type == p.param_type) {
        return Status(InvalidArgumentError("duplicate QoS param_type " +
                                           std::string(ParamTypeName(p.type()))));
      }
    }
    if (p.min_value != kUnbounded && p.max_value != kUnbounded &&
        p.min_value > p.max_value) {
      return Status(
          InvalidArgumentError("QoS range min > max: " + p.ToString()));
    }
    if (!p.Accepts(static_cast<corba::Long>(p.request_value))) {
      return Status(InvalidArgumentError(
          "QoS request_value outside acceptable range: " + p.ToString()));
    }
  }
  QoSSpec s;
  s.params_ = std::move(params);
  return s;
}

const QoSParameter* QoSSpec::Find(ParamType type) const noexcept {
  const auto raw = static_cast<corba::ULong>(type);
  for (const QoSParameter& p : params_) {
    if (p.param_type == raw) return &p;
  }
  return nullptr;
}

void QoSSpec::Set(const QoSParameter& p) {
  for (QoSParameter& existing : params_) {
    if (existing.param_type == p.param_type) {
      existing = p;
      return;
    }
  }
  params_.push_back(p);
}

std::string QoSSpec::ToString() const {
  std::string out = "[";
  for (std::size_t i = 0; i < params_.size(); ++i) {
    if (i != 0) out += ", ";
    out += params_[i].ToString();
  }
  out += "]";
  return out;
}

}  // namespace cool::qos
