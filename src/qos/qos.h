// QoS specification types. QoSParameter is the exact wire struct from the
// paper's Figure 2-(ii):
//
//   struct QoSParameter {
//     unsigned long param_type;
//     unsigned long request_value;
//     long max_value;
//     long min_value;
//   };
//
// The client fills an array of these and hands it to the stub via
// setQoSParameter(); the stub propagates it through the ORB (extended GIOP
// Request) and down to the transport (Da CaPo).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "cdr/decoder.h"
#include "cdr/encoder.h"
#include "cdr/types.h"
#include "common/status.h"

namespace cool::qos {

// Registry of parameter types. The paper leaves the type space open
// ("param_type"); we define the dimensions the MULTE project names in the
// introduction (low latency, high throughput, controlled delay jitter) plus
// the protocol-function-shaped ones Da CaPo configures for.
enum class ParamType : corba::ULong {
  kThroughputKbps = 1,   // application data rate, kilobit/s
  kLatencyMicros = 2,    // one-way latency bound, microseconds
  kJitterMicros = 3,     // delay jitter bound, microseconds
  kReliability = 4,      // 0 = best effort, 1 = error detection,
                         // 2 = error detection + retransmission
  kOrdering = 5,         // 0 = unordered, 1 = in-order delivery
  kEncryption = 6,       // 0 = plaintext, 1 = encrypted payload
  kLossPermille = 7,     // tolerable packet loss, permille
  kPriority = 8,         // relative scheduling priority, 0..255
};

// For negotiation we must know which direction is "better": a server that
// can give *more* throughput than requested is fine, one that can only give
// *more* latency is not.
enum class Direction {
  kHigherIsBetter,  // throughput, reliability, ordering, encryption, priority
  kLowerIsBetter,   // latency, jitter, loss
};

Direction DirectionOf(ParamType type) noexcept;
std::string_view ParamTypeName(ParamType type) noexcept;
bool IsKnownParamType(corba::ULong raw) noexcept;

// Sentinel for "no bound" in min_value / max_value.
inline constexpr corba::Long kUnbounded = -1;

// Wire-exact QoS parameter (paper Fig. 2-ii).
struct QoSParameter {
  corba::ULong param_type = 0;
  corba::ULong request_value = 0;
  corba::Long max_value = kUnbounded;
  corba::Long min_value = kUnbounded;

  ParamType type() const noexcept {
    return static_cast<ParamType>(param_type);
  }

  // True iff `value` lies inside [min_value, max_value] (unbounded ends
  // always accept).
  bool Accepts(corba::Long value) const noexcept;

  std::string ToString() const;

  friend bool operator==(const QoSParameter&, const QoSParameter&) = default;
};

// Convenience constructors used by clients (and tests) instead of filling
// the raw struct.
QoSParameter RequireThroughputKbps(corba::ULong request, corba::Long min_ok);
QoSParameter RequireLatencyMicros(corba::ULong request, corba::Long max_ok);
QoSParameter RequireJitterMicros(corba::ULong request, corba::Long max_ok);
QoSParameter RequireReliability(corba::ULong level);
QoSParameter RequireOrdering(bool ordered);
QoSParameter RequireEncryption(bool encrypted);
QoSParameter RequireLossPermille(corba::ULong request, corba::Long max_ok);
QoSParameter RequirePriority(corba::ULong level);

// CDR marshalling: four naturally-aligned 32-bit fields.
void EncodeQoSParameter(cdr::Encoder& enc, const QoSParameter& p);
Result<QoSParameter> DecodeQoSParameter(cdr::Decoder& dec);

// The `sequence<QoSParameter> qos_params` field of the extended Request.
void EncodeQoSParameterSeq(cdr::Encoder& enc,
                           const std::vector<QoSParameter>& seq);
Result<std::vector<QoSParameter>> DecodeQoSParameterSeq(cdr::Decoder& dec);

// A validated set of QoS parameters, at most one per param_type. This is
// what flows through the ORB layers.
class QoSSpec {
 public:
  QoSSpec() = default;

  // Rejects duplicate param_types and malformed ranges (min > max when both
  // bounded, request outside the acceptable range).
  static Result<QoSSpec> FromParameters(std::vector<QoSParameter> params);

  // Unchecked construction for wire-decoded data the caller validates.
  static QoSSpec Trusted(std::vector<QoSParameter> params) {
    QoSSpec s;
    s.params_ = std::move(params);
    return s;
  }

  const std::vector<QoSParameter>& parameters() const noexcept {
    return params_;
  }
  bool empty() const noexcept { return params_.empty(); }
  std::size_t size() const noexcept { return params_.size(); }

  const QoSParameter* Find(ParamType type) const noexcept;

  // Adds or replaces the parameter of the same type.
  void Set(const QoSParameter& p);

  std::string ToString() const;

  friend bool operator==(const QoSSpec&, const QoSSpec&) = default;

 private:
  std::vector<QoSParameter> params_;
};

}  // namespace cool::qos
