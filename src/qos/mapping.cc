#include "qos/mapping.h"

#include <sstream>

namespace cool::qos {

std::string ProtocolRequirements::ToString() const {
  std::ostringstream os;
  os << "Requirements{functions=[";
  bool first = true;
  auto add = [&](bool on, const char* name) {
    if (!on) return;
    if (!first) os << ",";
    first = false;
    os << name;
  };
  add(need_error_detection, "error_detection");
  add(need_retransmission, "retransmission");
  add(need_ordering, "ordering");
  add(need_encryption, "encryption");
  os << "]";
  if (min_throughput_kbps != 0) os << ", thr>=" << min_throughput_kbps << "kbps";
  if (max_latency_us != std::numeric_limits<corba::ULong>::max()) {
    os << ", lat<=" << max_latency_us << "us";
  }
  if (max_jitter_us != std::numeric_limits<corba::ULong>::max()) {
    os << ", jit<=" << max_jitter_us << "us";
  }
  if (max_loss_permille != std::numeric_limits<corba::ULong>::max()) {
    os << ", loss<=" << max_loss_permille << "pm";
  }
  if (priority != 0) os << ", prio=" << priority;
  os << "}";
  return os.str();
}

ProtocolRequirements MapToProtocolRequirements(const QoSSpec& spec) {
  ProtocolRequirements req;

  if (const QoSParameter* p = spec.Find(ParamType::kReliability)) {
    // Floor of acceptability: the client tolerates down to min_value.
    const corba::Long floor =
        p->min_value == kUnbounded ? 0 : p->min_value;
    const corba::Long effective =
        std::max(floor, static_cast<corba::Long>(0));
    // Instantiate what the *request* asks for; admission only needs the
    // floor, but the graph is configured toward the requested level.
    const auto target =
        std::max<corba::Long>(effective,
                              static_cast<corba::Long>(p->request_value));
    req.need_error_detection = target >= 1;
    req.need_retransmission = target >= 2;
  }
  if (const QoSParameter* p = spec.Find(ParamType::kOrdering)) {
    req.need_ordering = p->request_value >= 1;
  }
  if (const QoSParameter* p = spec.Find(ParamType::kEncryption)) {
    req.need_encryption = p->request_value >= 1;
  }
  if (const QoSParameter* p = spec.Find(ParamType::kThroughputKbps)) {
    // Admission floor: min acceptable throughput, else the request itself.
    req.min_throughput_kbps =
        p->min_value == kUnbounded
            ? p->request_value
            : static_cast<corba::ULong>(p->min_value);
  }
  if (const QoSParameter* p = spec.Find(ParamType::kLatencyMicros)) {
    req.max_latency_us =
        p->max_value == kUnbounded
            ? p->request_value
            : static_cast<corba::ULong>(p->max_value);
  }
  if (const QoSParameter* p = spec.Find(ParamType::kJitterMicros)) {
    req.max_jitter_us =
        p->max_value == kUnbounded
            ? p->request_value
            : static_cast<corba::ULong>(p->max_value);
  }
  if (const QoSParameter* p = spec.Find(ParamType::kLossPermille)) {
    req.max_loss_permille =
        p->max_value == kUnbounded
            ? p->request_value
            : static_cast<corba::ULong>(p->max_value);
  }
  if (const QoSParameter* p = spec.Find(ParamType::kPriority)) {
    req.priority = p->request_value;
  }
  return req;
}

}  // namespace cool::qos
