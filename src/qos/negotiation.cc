#include "qos/negotiation.h"

#include <algorithm>
#include <limits>
#include <sstream>

namespace cool::qos {

namespace {

// Default "best" when a dimension is absent from the capability map.
corba::Long DefaultBest(ParamType type) noexcept {
  return DirectionOf(type) == Direction::kHigherIsBetter
             ? 0  // feature unavailable / zero rate
             : std::numeric_limits<corba::Long>::max();  // no bound at all
}

}  // namespace

Capability& Capability::SetBest(ParamType type, corba::Long best_value) {
  best_[type] = best_value;
  return *this;
}

bool Capability::Has(ParamType type) const noexcept {
  return best_.contains(type);
}

corba::Long Capability::BestFor(ParamType type) const noexcept {
  const auto it = best_.find(type);
  return it != best_.end() ? it->second : DefaultBest(type);
}

Capability Capability::BestEffortOnly() {
  return Capability(UnknownPolicy::kReject);
}

std::string Capability::ToString() const {
  std::ostringstream os;
  os << "Capability{";
  bool first = true;
  for (const auto& [type, best] : best_) {
    if (!first) os << ", ";
    first = false;
    os << ParamTypeName(type) << "<=best:" << best;
  }
  os << "}";
  return os.str();
}

std::string ParameterOutcome::ToString() const {
  std::ostringstream os;
  os << requested.ToString();
  if (accepted) {
    os << " -> granted " << granted;
  } else {
    os << " -> REJECTED (" << reason << ")";
  }
  return os.str();
}

std::string NegotiationResult::RejectionReason() const {
  if (accepted) return "";
  std::string out;
  for (const ParameterOutcome& o : outcomes) {
    if (o.accepted) continue;
    if (!out.empty()) out += "; ";
    out += o.ToString();
  }
  return out;
}

NegotiationResult Negotiate(const QoSSpec& requested,
                            const Capability& capability) {
  NegotiationResult result;
  result.accepted = true;

  for (const QoSParameter& p : requested.parameters()) {
    ParameterOutcome outcome;
    outcome.requested = p;

    if (!IsKnownParamType(p.param_type)) {
      if (capability.unknown_policy() == Capability::UnknownPolicy::kIgnore) {
        outcome.accepted = true;
        outcome.granted = static_cast<corba::Long>(p.request_value);
        result.outcomes.push_back(outcome);
        continue;
      }
      outcome.accepted = false;
      outcome.reason = "unknown param_type";
      result.outcomes.push_back(outcome);
      result.accepted = false;
      continue;
    }

    const ParamType type = p.type();
    const corba::Long best = capability.BestFor(type);
    const auto request = static_cast<corba::Long>(p.request_value);

    corba::Long granted = 0;
    if (DirectionOf(type) == Direction::kHigherIsBetter) {
      granted = std::min(request, best);
    } else {
      granted = std::max(request, best);
    }

    outcome.granted = granted;
    outcome.accepted = p.Accepts(granted);
    if (!outcome.accepted) {
      std::ostringstream os;
      os << "capability best=" << best << " cannot meet acceptable range";
      outcome.reason = os.str();
      result.accepted = false;
    }
    result.outcomes.push_back(outcome);
  }

  if (result.accepted) {
    for (const ParameterOutcome& o : result.outcomes) {
      QoSParameter granted_param = o.requested;
      granted_param.request_value = static_cast<corba::ULong>(o.granted);
      result.granted.Set(granted_param);
    }
  }
  return result;
}

Capability Compose(const Capability& a, const Capability& b) {
  // Reject-unknown dominates: the composition is only as permissive as its
  // strictest member.
  const auto policy =
      (a.unknown_policy() == Capability::UnknownPolicy::kReject ||
       b.unknown_policy() == Capability::UnknownPolicy::kReject)
          ? Capability::UnknownPolicy::kReject
          : Capability::UnknownPolicy::kIgnore;
  Capability out(policy);

  static constexpr ParamType kAll[] = {
      ParamType::kThroughputKbps, ParamType::kLatencyMicros,
      ParamType::kJitterMicros,   ParamType::kReliability,
      ParamType::kOrdering,       ParamType::kEncryption,
      ParamType::kLossPermille,   ParamType::kPriority,
  };
  for (ParamType type : kAll) {
    if (!a.Has(type) && !b.Has(type)) continue;
    const corba::Long best_a = a.BestFor(type);
    const corba::Long best_b = b.BestFor(type);
    // Latency and jitter add along a path; every other dimension is limited
    // by the weaker hop.
    corba::Long combined = 0;
    if (type == ParamType::kLatencyMicros || type == ParamType::kJitterMicros) {
      // Saturating add: either side may be "no bound".
      const corba::Long kMax = std::numeric_limits<corba::Long>::max();
      combined = (best_a >= kMax - best_b) ? kMax : best_a + best_b;
    } else if (DirectionOf(type) == Direction::kHigherIsBetter) {
      combined = std::min(best_a, best_b);
    } else {
      combined = std::max(best_a, best_b);
    }
    out.SetBest(type, combined);
  }
  return out;
}

}  // namespace cool::qos
