#include "qos/classify.h"

namespace cool::qos {

namespace {

std::uint32_t WeightForLatencyBound(corba::ULong micros) {
  if (micros <= 1'000) return 8;
  if (micros <= 10'000) return 4;
  return 2;
}

}  // namespace

SchedProfile ClassifyForScheduling(
    const std::vector<QoSParameter>& params) noexcept {
  SchedProfile profile;
  bool saw_priority = false;
  corba::ULong tightest_bound = 0;
  bool have_bound = false;

  for (const QoSParameter& p : params) {
    switch (p.type()) {
      case ParamType::kPriority:
        // The first explicit priority decides band and weight (matching
        // the historical first-parameter-wins classification).
        if (saw_priority) break;
        saw_priority = true;
        if (p.request_value >= 170) {
          profile.band = SchedProfile::Band::kHigh;
          profile.weight = 1 + (p.request_value - 170) / 11;
        } else if (p.request_value < 85) {
          profile.band = SchedProfile::Band::kLow;
          profile.weight = 1 + p.request_value / 11;
        } else {
          profile.band = SchedProfile::Band::kNormal;
          profile.weight = 1 + (p.request_value - 85) / 11;
        }
        break;
      case ParamType::kLatencyMicros:
      case ParamType::kJitterMicros:
        profile.latency_sensitive = true;
        if (!have_bound || p.request_value < tightest_bound) {
          tightest_bound = p.request_value;
          have_bound = true;
        }
        break;
      case ParamType::kThroughputKbps:
        // Only a bounded maximum shapes: the contract's ceiling becomes a
        // token-bucket rate (kbit/s -> bytes/s). The requested value is a
        // floor and must never throttle.
        if (p.max_value != kUnbounded && p.max_value > 0) {
          profile.rate_bytes_per_sec =
              static_cast<std::uint64_t>(p.max_value) * 1000u / 8u;
        }
        break;
      default:
        break;
    }
  }

  if (!saw_priority && profile.latency_sensitive) {
    profile.band = SchedProfile::Band::kHigh;
    profile.weight = WeightForLatencyBound(tightest_bound);
  }
  if (profile.weight == 0) profile.weight = 1;
  if (profile.weight > 8) profile.weight = 8;
  return profile;
}

}  // namespace cool::qos
