// QoSParameter -> scheduling profile: the classification stage of the
// classify/queue/schedule pipeline. A Request's (or binding's) negotiated
// QoS vector maps onto a traffic-class band plus a weight/rate profile —
// the way a switch ASIC maps CoS/DSCP onto local-priority + queue profile
// — and both scheduler mounts (the GIOP dispatch pool and the Da CaPo
// egress scheduler) consume the same mapping, so a binding's contract
// means the same thing on the way in and on the way out.
//
// The mapping table (see DESIGN.md §13):
//
//   kPriority 170..255  -> High band,   weight 1 + (value-170)/11  (1..8)
//   kPriority  85..169  -> Normal band, weight 1 + (value-85)/11
//   kPriority   0..84   -> Low band,    weight 1 + value/11
//   kLatency/kJitter    -> High band (latency-sensitive); weight 8 for
//                          bounds <= 1ms, 4 for <= 10ms, else 2
//   kThroughputKbps     -> a bounded max_value becomes a token-bucket
//                          rate cap (the contract's ceiling); the request
//                          value alone (a floor) never shapes
//   no parameters       -> Normal band, weight 1, unshaped
//
// An explicit priority wins the band decision over latency/jitter
// promotion, mirroring giop::ClassifyQoS which this generalizes.
#pragma once

#include <cstdint>
#include <vector>

#include "qos/qos.h"

namespace cool::qos {

struct SchedProfile {
  // Traffic-class band, highest first; values mirror giop::DispatchClass.
  enum class Band : int { kHigh = 0, kNormal = 1, kLow = 2 };

  Band band = Band::kNormal;
  // DRR weight among sibling bindings inside the band, 1..8.
  std::uint32_t weight = 1;
  // Token-bucket byte-rate cap derived from a bounded throughput
  // parameter; 0 = unshaped.
  std::uint64_t rate_bytes_per_sec = 0;
  // A latency or jitter bound was present (the band promotion reason).
  bool latency_sensitive = false;

  friend bool operator==(const SchedProfile&, const SchedProfile&) = default;
};

SchedProfile ClassifyForScheduling(
    const std::vector<QoSParameter>& params) noexcept;

}  // namespace cool::qos
