// QoS -> protocol-requirement mapping (paper §4.3: "Within Da CaPo, these
// QoS parameters are mapped to a particular protocol configuration, network
// resources, and operating system resources").
//
// The mapping reduces an application-level QoSSpec to (a) the set of
// protocol *functions* the layer-C graph must contain and (b) numeric
// performance constraints the configuration manager's cost model and the
// resource manager's admission test consume.
#pragma once

#include <cstdint>
#include <limits>
#include <string>

#include "qos/qos.h"

namespace cool::qos {

struct ProtocolRequirements {
  // Protocol functions to instantiate in the module graph.
  bool need_error_detection = false;   // reliability >= 1
  bool need_retransmission = false;    // reliability >= 2
  bool need_ordering = false;          // ordering == 1
  bool need_encryption = false;        // encryption == 1

  // Performance constraints. 0 on throughput means "no minimum";
  // max() on bounds means "no bound".
  corba::ULong min_throughput_kbps = 0;
  corba::ULong max_latency_us = std::numeric_limits<corba::ULong>::max();
  corba::ULong max_jitter_us = std::numeric_limits<corba::ULong>::max();
  corba::ULong max_loss_permille =
      std::numeric_limits<corba::ULong>::max();
  corba::ULong priority = 0;

  bool HasPerformanceConstraints() const noexcept {
    return min_throughput_kbps != 0 ||
           max_latency_us != std::numeric_limits<corba::ULong>::max() ||
           max_jitter_us != std::numeric_limits<corba::ULong>::max();
  }

  std::string ToString() const;

  friend bool operator==(const ProtocolRequirements&,
                         const ProtocolRequirements&) = default;
};

// Derives requirements from the *granted* (or requested) spec. For range
// parameters the floor of acceptability is used for admission (min_value on
// higher-is-better, max_value on lower-is-better): a configuration is
// admissible as long as it can keep the connection within the acceptable
// range, even if it cannot hit request_value exactly.
ProtocolRequirements MapToProtocolRequirements(const QoSSpec& spec);

}  // namespace cool::qos
