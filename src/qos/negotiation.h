// Bilateral QoS negotiation (paper §4.2, Fig. 3): the client sends a
// requested QoSSpec inside the extended GIOP Request; the receiving side
// evaluates it against a Capability and either grants a concrete value per
// parameter (Reply path, Fig. 3-ii) or refuses (NACK via the standard CORBA
// exception mechanism, Fig. 3-i).
//
// The same engine implements the *unilateral* negotiation between message
// layer and transport layer (paper §4.3): the transport's Capability is
// derived from link properties and Da CaPo's module library, and a failed
// evaluation raises an exception to the caller before the Request is sent.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "qos/qos.h"

namespace cool::qos {

// What one side can deliver, per parameter type: the *best* value it can
// achieve in that dimension (highest throughput, lowest latency, ...).
// Parameters absent from the map fall back to a per-direction default:
// higher-is-better dimensions default to 0 (feature not available),
// lower-is-better dimensions default to "unbounded badness" (no guarantee).
class Capability {
 public:
  // How to treat param_types this implementation does not know.
  enum class UnknownPolicy { kReject, kIgnore };

  explicit Capability(UnknownPolicy policy = UnknownPolicy::kReject)
      : policy_(policy) {}

  Capability& SetBest(ParamType type, corba::Long best_value);
  bool Has(ParamType type) const noexcept;
  corba::Long BestFor(ParamType type) const noexcept;
  UnknownPolicy unknown_policy() const noexcept { return policy_; }

  // A capability that accepts anything (used by the plain-TCP channel when
  // QoS is never requested; requesting QoS against it still fails because
  // its map is empty and every guarantee degenerates to "none").
  static Capability BestEffortOnly();

  std::string ToString() const;

 private:
  UnknownPolicy policy_;
  std::map<ParamType, corba::Long> best_;
};

// Per-parameter outcome of a negotiation.
struct ParameterOutcome {
  QoSParameter requested;
  corba::Long granted = 0;  // meaningful only when accepted
  bool accepted = false;
  std::string reason;  // set when !accepted

  std::string ToString() const;
};

// Whole-spec outcome. The negotiation is all-or-nothing, as in the paper:
// the operation is aborted and an exception returned if the requested QoS
// cannot be supported.
struct NegotiationResult {
  bool accepted = false;
  QoSSpec granted;                          // when accepted
  std::vector<ParameterOutcome> outcomes;   // always, one per requested param

  // Human-readable summary of why the NACK happened (joins the failing
  // outcomes' reasons); empty when accepted.
  std::string RejectionReason() const;
};

// Evaluates `requested` against `capability`.
//
// Per parameter, with D = DirectionOf(type):
//   D == higher-is-better: granted = min(request_value, best).
//       accepted iff requested.Accepts(granted) — i.e. granted >= min_value.
//   D == lower-is-better:  granted = max(request_value, best).
//       accepted iff requested.Accepts(granted) — i.e. granted <= max_value.
//
// The request is accepted iff every parameter is.
NegotiationResult Negotiate(const QoSSpec& requested,
                            const Capability& capability);

// Combines two capabilities into the capability of the serial composition
// (e.g. transport link AND server endsystem): the weaker guarantee wins in
// each dimension. A dimension missing on either side is missing in the
// result unless the other side also misses it.
Capability Compose(const Capability& a, const Capability& b);

}  // namespace cool::qos
