// chic — the COOL IDL compiler (reproduction). Reads an IDL file and emits
// a C++ header with CDR codecs, QoS-aware stubs and skeletons.
//
//   chic input.idl [-o output.h]
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "idl/codegen.h"

namespace {

std::string GuardNameFrom(const std::string& path) {
  std::string base = path;
  const std::size_t slash = base.find_last_of('/');
  if (slash != std::string::npos) base = base.substr(slash + 1);
  const std::size_t dot = base.find_last_of('.');
  if (dot != std::string::npos) base = base.substr(0, dot);
  for (char& c : base) {
    if (std::isalnum(static_cast<unsigned char>(c)) == 0) c = '_';
  }
  return base.empty() ? "generated" : base;
}

}  // namespace

int main(int argc, char** argv) {
  std::string input;
  std::string output;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "-o" && i + 1 < argc) {
      output = argv[++i];
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "usage: chic input.idl [-o output.h]\n";
      return 0;
    } else if (input.empty()) {
      input = arg;
    } else {
      std::cerr << "chic: unexpected argument '" << arg << "'\n";
      return 2;
    }
  }
  if (input.empty()) {
    std::cerr << "chic: no input file (try --help)\n";
    return 2;
  }
  if (output.empty()) {
    output = GuardNameFrom(input) + ".h";
  }

  std::ifstream in(input);
  if (!in) {
    std::cerr << "chic: cannot open " << input << "\n";
    return 1;
  }
  std::ostringstream source;
  source << in.rdbuf();

  cool::idl::CodegenOptions options;
  options.guard_name = GuardNameFrom(input);
  auto generated = cool::idl::CompileIdl(source.str(), options);
  if (!generated.ok()) {
    std::cerr << "chic: " << generated.status().ToString() << "\n";
    return 1;
  }

  std::ofstream out(output);
  if (!out) {
    std::cerr << "chic: cannot write " << output << "\n";
    return 1;
  }
  out << *generated;
  std::cout << "chic: wrote " << output << "\n";
  return 0;
}
