// Lexer for the IDL subset accepted by our Chic reproduction (the paper's
// modified COOL IDL compiler). Supports the tokens needed for modules,
// structs, enums, exceptions and interfaces with in/out/inout parameters.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace cool::idl {

enum class TokenKind {
  kIdentifier,
  kKeyword,
  kIntegerLiteral,
  kLBrace,     // {
  kRBrace,     // }
  kLParen,     // (
  kRParen,     // )
  kLAngle,     // <
  kRAngle,     // >
  kComma,      // ,
  kSemicolon,  // ;
  kColon,      // :
  kScope,      // ::
  kEquals,     // =
  kEof,
};

std::string_view TokenKindName(TokenKind kind) noexcept;

struct Token {
  TokenKind kind = TokenKind::kEof;
  std::string text;
  int line = 0;

  bool Is(TokenKind k) const noexcept { return kind == k; }
  bool IsKeyword(std::string_view kw) const noexcept {
    return kind == TokenKind::kKeyword && text == kw;
  }
};

// True for the reserved words of our subset ("module", "interface",
// "struct", "enum", "exception", "oneway", "raises", type names, ...).
bool IsIdlKeyword(std::string_view word) noexcept;

// Tokenizes `source`. Handles // and /* */ comments and #pragma/#include
// lines (skipped). Fails with kInvalidArgument on stray characters.
Result<std::vector<Token>> Tokenize(std::string_view source);

}  // namespace cool::idl
