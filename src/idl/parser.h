// Recursive-descent parser + semantic checks for the Chic IDL subset:
//
//   file        := module*
//   module      := "module" ID "{" definition* "}" ";"
//   definition  := struct | enum | exception | interface
//   struct      := "struct" ID "{" (type ID ";")* "}" ";"
//   enum        := "enum" ID "{" ID ("," ID)* "}" ";"
//   exception   := "exception" ID "{" (type ID ";")* "}" ";"
//   interface   := "interface" ID "{" operation* "}" ";"
//   operation   := ["oneway"] type ID "(" params ")" ["raises" "(" IDs ")"] ";"
//   params      := [param ("," param)*]
//   param       := ("in"|"out"|"inout") type ID
//   type        := base types | "sequence" "<" type ">" | ID
//
// Semantic rules enforced: unique names per scope, named types defined
// before use, oneway operations return void with in-params only and no
// raises clause, raises names refer to exceptions.
#pragma once

#include "common/status.h"
#include "idl/ast.h"
#include "idl/lexer.h"

namespace cool::idl {

Result<IdlFile> Parse(std::string_view source);

}  // namespace cool::idl
