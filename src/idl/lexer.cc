#include "idl/lexer.h"

#include <array>
#include <cctype>

namespace cool::idl {

std::string_view TokenKindName(TokenKind kind) noexcept {
  switch (kind) {
    case TokenKind::kIdentifier: return "identifier";
    case TokenKind::kKeyword: return "keyword";
    case TokenKind::kIntegerLiteral: return "integer";
    case TokenKind::kLBrace: return "'{'";
    case TokenKind::kRBrace: return "'}'";
    case TokenKind::kLParen: return "'('";
    case TokenKind::kRParen: return "')'";
    case TokenKind::kLAngle: return "'<'";
    case TokenKind::kRAngle: return "'>'";
    case TokenKind::kComma: return "','";
    case TokenKind::kSemicolon: return "';'";
    case TokenKind::kColon: return "':'";
    case TokenKind::kScope: return "'::'";
    case TokenKind::kEquals: return "'='";
    case TokenKind::kEof: return "end of file";
  }
  return "?";
}

bool IsIdlKeyword(std::string_view word) noexcept {
  static constexpr std::array kKeywords = {
      "module",    "interface", "struct",   "enum",     "exception",
      "oneway",    "raises",    "in",       "out",      "inout",
      "void",      "boolean",   "octet",    "char",     "short",
      "long",      "unsigned",  "float",    "double",   "string",
      "sequence",  "readonly",  "attribute", "typedef", "const",
  };
  for (std::string_view kw : kKeywords) {
    if (kw == word) return true;
  }
  return false;
}

Result<std::vector<Token>> Tokenize(std::string_view source) {
  std::vector<Token> tokens;
  int line = 1;
  std::size_t i = 0;
  const std::size_t n = source.size();

  auto error = [&](const std::string& what) {
    return Status(InvalidArgumentError("IDL lex error at line " +
                                       std::to_string(line) + ": " + what));
  };

  while (i < n) {
    const char c = source[i];
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c)) != 0) {
      ++i;
      continue;
    }
    // Preprocessor-ish lines are skipped whole.
    if (c == '#') {
      while (i < n && source[i] != '\n') ++i;
      continue;
    }
    if (c == '/' && i + 1 < n && source[i + 1] == '/') {
      while (i < n && source[i] != '\n') ++i;
      continue;
    }
    if (c == '/' && i + 1 < n && source[i + 1] == '*') {
      i += 2;
      while (i + 1 < n && !(source[i] == '*' && source[i + 1] == '/')) {
        if (source[i] == '\n') ++line;
        ++i;
      }
      if (i + 1 >= n) return error("unterminated block comment");
      i += 2;
      continue;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_') {
      const std::size_t start = i;
      while (i < n && (std::isalnum(static_cast<unsigned char>(source[i])) !=
                           0 ||
                       source[i] == '_')) {
        ++i;
      }
      Token t;
      t.text = std::string(source.substr(start, i - start));
      t.kind = IsIdlKeyword(t.text) ? TokenKind::kKeyword
                                    : TokenKind::kIdentifier;
      t.line = line;
      tokens.push_back(std::move(t));
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) != 0) {
      const std::size_t start = i;
      while (i < n &&
             std::isdigit(static_cast<unsigned char>(source[i])) != 0) {
        ++i;
      }
      tokens.push_back(
          {TokenKind::kIntegerLiteral,
           std::string(source.substr(start, i - start)), line});
      continue;
    }

    TokenKind kind;
    std::string text(1, c);
    switch (c) {
      case '{': kind = TokenKind::kLBrace; break;
      case '}': kind = TokenKind::kRBrace; break;
      case '(': kind = TokenKind::kLParen; break;
      case ')': kind = TokenKind::kRParen; break;
      case '<': kind = TokenKind::kLAngle; break;
      case '>': kind = TokenKind::kRAngle; break;
      case ',': kind = TokenKind::kComma; break;
      case ';': kind = TokenKind::kSemicolon; break;
      case '=': kind = TokenKind::kEquals; break;
      case ':':
        if (i + 1 < n && source[i + 1] == ':') {
          kind = TokenKind::kScope;
          text = "::";
          ++i;
        } else {
          kind = TokenKind::kColon;
        }
        break;
      default:
        return error(std::string("unexpected character '") + c + "'");
    }
    tokens.push_back({kind, std::move(text), line});
    ++i;
  }
  tokens.push_back({TokenKind::kEof, "", line});
  return tokens;
}

}  // namespace cool::idl
