// Abstract syntax tree for the Chic IDL subset.
#pragma once

#include <memory>
#include <string>
#include <vector>

namespace cool::idl {

struct Type {
  enum class Kind {
    kVoid,
    kBoolean,
    kOctet,
    kChar,
    kShort,
    kUShort,
    kLong,
    kULong,
    kLongLong,
    kULongLong,
    kFloat,
    kDouble,
    kString,
    kSequence,  // element in `element`
    kNamed,     // struct or enum reference in `name`
  };

  Kind kind = Kind::kVoid;
  std::string name;                 // kNamed only
  std::shared_ptr<Type> element;    // kSequence only

  bool IsVoid() const noexcept { return kind == Kind::kVoid; }
  std::string ToIdlString() const;
};

struct StructField {
  Type type;
  std::string name;
};

struct StructDef {
  std::string name;
  std::vector<StructField> fields;
};

struct EnumDef {
  std::string name;
  std::vector<std::string> enumerators;
};

struct ExceptionDef {
  std::string name;
  std::vector<StructField> fields;
};

enum class ParamDir { kIn, kOut, kInOut };

struct Param {
  ParamDir dir = ParamDir::kIn;
  Type type;
  std::string name;
};

struct Operation {
  bool oneway = false;
  Type return_type;
  std::string name;
  std::vector<Param> params;
  std::vector<std::string> raises;  // exception names
};

struct InterfaceDef {
  std::string name;
  std::vector<Operation> operations;
};

struct TypedefDef {
  Type type;
  std::string name;
};

struct ConstDef {
  Type type;          // integral kinds only
  std::string name;
  std::string value;  // decimal literal text
};

struct ModuleDef {
  std::string name;
  std::vector<StructDef> structs;
  std::vector<EnumDef> enums;
  std::vector<ExceptionDef> exceptions;
  std::vector<InterfaceDef> interfaces;
  std::vector<TypedefDef> typedefs;
  std::vector<ConstDef> consts;

  // Source order of the definitions above, so the code generator can emit
  // them with every name defined before use (the parser enforces
  // define-before-use, so source order is always safe).
  enum class DefKind { kStruct, kEnum, kException, kInterface, kTypedef,
                       kConst };
  std::vector<std::pair<DefKind, std::size_t>> order;
};

struct IdlFile {
  std::vector<ModuleDef> modules;
};

}  // namespace cool::idl
