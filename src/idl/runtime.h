// Runtime support for Chic-generated code. Generated stubs/skeletons call
// these overloads for marshalling; user-defined IDL structs get their own
// Encode/Decode overloads generated next to them and found via ADL.
#pragma once

#include <span>
#include <vector>

#include "cdr/decoder.h"
#include "cdr/encoder.h"
#include "cdr/types.h"
#include "common/status.h"

namespace cool::idl::rt {

// --- primitive encoders -----------------------------------------------------
inline void Encode(cdr::Encoder& e, corba::Boolean v) { e.PutBoolean(v); }
inline void Encode(cdr::Encoder& e, corba::Char v) { e.PutChar(v); }
inline void Encode(cdr::Encoder& e, corba::Octet v) { e.PutOctet(v); }
inline void Encode(cdr::Encoder& e, corba::Short v) { e.PutShort(v); }
inline void Encode(cdr::Encoder& e, corba::UShort v) { e.PutUShort(v); }
inline void Encode(cdr::Encoder& e, corba::Long v) { e.PutLong(v); }
inline void Encode(cdr::Encoder& e, corba::ULong v) { e.PutULong(v); }
inline void Encode(cdr::Encoder& e, corba::LongLong v) { e.PutLongLong(v); }
inline void Encode(cdr::Encoder& e, corba::ULongLong v) {
  e.PutULongLong(v);
}
inline void Encode(cdr::Encoder& e, corba::Float v) { e.PutFloat(v); }
inline void Encode(cdr::Encoder& e, corba::Double v) { e.PutDouble(v); }
inline void Encode(cdr::Encoder& e, const corba::String& v) {
  e.PutString(v);
}

// --- primitive decoders -----------------------------------------------------
inline Status Decode(cdr::Decoder& d, corba::Boolean& v) {
  COOL_ASSIGN_OR_RETURN(v, d.GetBoolean());
  return Status::Ok();
}
inline Status Decode(cdr::Decoder& d, corba::Char& v) {
  COOL_ASSIGN_OR_RETURN(v, d.GetChar());
  return Status::Ok();
}
inline Status Decode(cdr::Decoder& d, corba::Octet& v) {
  COOL_ASSIGN_OR_RETURN(v, d.GetOctet());
  return Status::Ok();
}
inline Status Decode(cdr::Decoder& d, corba::Short& v) {
  COOL_ASSIGN_OR_RETURN(v, d.GetShort());
  return Status::Ok();
}
inline Status Decode(cdr::Decoder& d, corba::UShort& v) {
  COOL_ASSIGN_OR_RETURN(v, d.GetUShort());
  return Status::Ok();
}
inline Status Decode(cdr::Decoder& d, corba::Long& v) {
  COOL_ASSIGN_OR_RETURN(v, d.GetLong());
  return Status::Ok();
}
inline Status Decode(cdr::Decoder& d, corba::ULong& v) {
  COOL_ASSIGN_OR_RETURN(v, d.GetULong());
  return Status::Ok();
}
inline Status Decode(cdr::Decoder& d, corba::LongLong& v) {
  COOL_ASSIGN_OR_RETURN(v, d.GetLongLong());
  return Status::Ok();
}
inline Status Decode(cdr::Decoder& d, corba::ULongLong& v) {
  COOL_ASSIGN_OR_RETURN(v, d.GetULongLong());
  return Status::Ok();
}
inline Status Decode(cdr::Decoder& d, corba::Float& v) {
  COOL_ASSIGN_OR_RETURN(v, d.GetFloat());
  return Status::Ok();
}
inline Status Decode(cdr::Decoder& d, corba::Double& v) {
  COOL_ASSIGN_OR_RETURN(v, d.GetDouble());
  return Status::Ok();
}
inline Status Decode(cdr::Decoder& d, corba::String& v) {
  COOL_ASSIGN_OR_RETURN(v, d.GetString());
  return Status::Ok();
}

// --- sequences ----------------------------------------------------------------
// Sequences of fixed-size primitives take the bulk CDR path (one memcpy or
// byteswap sweep over the whole payload); everything else recurses
// element-wise through the ADL-found Encode/Decode overloads.
template <typename T>
void Encode(cdr::Encoder& e, const std::vector<T>& v) {
  if constexpr (cdr::kPrimitiveSeqElement<T>) {
    e.PutPrimitiveSeq(std::span<const T>(v));
  } else {
    e.PutULong(static_cast<corba::ULong>(v.size()));
    for (const T& item : v) Encode(e, item);
  }
}

template <typename T>
Status Decode(cdr::Decoder& d, std::vector<T>& v) {
  if constexpr (cdr::kPrimitiveSeqElement<T>) {
    return d.GetPrimitiveSeq(v);
  } else {
    corba::ULong count = 0;
    COOL_ASSIGN_OR_RETURN(count, d.GetULong());
    if (count > d.remaining()) {  // every element costs >= 1 octet
      return ProtocolError("sequence count exceeds message size");
    }
    v.clear();
    v.reserve(count);
    for (corba::ULong i = 0; i < count; ++i) {
      T item{};
      COOL_RETURN_IF_ERROR(Decode(d, item));
      v.push_back(std::move(item));
    }
    return Status::Ok();
  }
}

// --- user exceptions -----------------------------------------------------------
// A USER_EXCEPTION reply body starts with the exception repository id.
// Generated stubs call this to surface the exception as a Status (the
// exception name is in the message; fields are interface-specific and can
// be re-decoded by callers that know the type).
inline Status DecodeUserException(cdr::Decoder& d) {
  auto repo_id = d.GetString();
  if (!repo_id.ok()) {
    return ProtocolError("unreadable user exception body");
  }
  return FailedPreconditionError("user exception " + *repo_id);
}

}  // namespace cool::idl::rt
