// C++ code generator — the back end of our Chic reproduction. Takes a
// parsed IDL file and emits one self-contained header with:
//   * C++ types + CDR Encode/Decode for structs, enums and exceptions,
//   * a <Interface>Stub class per interface (client side), inheriting
//     cool::orb::Stub — and therefore carrying the paper's
//     setQoSParameter method in every generated stub, exactly the template
//     modification described in §4.1,
//   * a <Interface>Skeleton class per interface (server side), inheriting
//     cool::orb::Servant, that unmarshals requests, upcalls the object
//     implementation, and marshals results (paper §2).
#pragma once

#include <string>

#include "common/status.h"
#include "idl/ast.h"

namespace cool::idl {

struct CodegenOptions {
  // Basename used for the include guard, e.g. "image" -> COOL_IDL_IMAGE_H.
  std::string guard_name = "generated";
};

Result<std::string> GenerateHeader(const IdlFile& file,
                                   const CodegenOptions& options = {});

// Convenience: parse + generate in one step (what the chic tool runs).
Result<std::string> CompileIdl(std::string_view source,
                               const CodegenOptions& options = {});

// The repository id Chic assigns: "IDL:<module>/<name>:1.0".
std::string RepositoryId(const std::string& module_name,
                         const std::string& def_name);

// IDL type -> C++ type spelling (exposed for tests).
std::string CppTypeName(const Type& type);

}  // namespace cool::idl
