#include "idl/parser.h"

#include <set>

namespace cool::idl {

namespace {

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<IdlFile> ParseFile() {
    IdlFile file;
    while (!Peek().Is(TokenKind::kEof)) {
      COOL_ASSIGN_OR_RETURN(ModuleDef module, ParseModule());
      file.modules.push_back(std::move(module));
    }
    if (file.modules.empty()) {
      return Error("IDL file defines no module");
    }
    return file;
  }

 private:
  const Token& Peek(std::size_t ahead = 0) const {
    const std::size_t idx = std::min(pos_ + ahead, tokens_.size() - 1);
    return tokens_[idx];
  }
  Token Take() { return tokens_[std::min(pos_++, tokens_.size() - 1)]; }

  Status Error(const std::string& what) const {
    return InvalidArgumentError("IDL parse error at line " +
                                std::to_string(Peek().line) + ": " + what);
  }

  Status Expect(TokenKind kind) {
    if (!Peek().Is(kind)) {
      return Error("expected " + std::string(TokenKindName(kind)) +
                   ", found '" + Peek().text + "'");
    }
    Take();
    return Status::Ok();
  }

  Status ExpectKeyword(std::string_view kw) {
    if (!Peek().IsKeyword(kw)) {
      return Error("expected '" + std::string(kw) + "', found '" +
                   Peek().text + "'");
    }
    Take();
    return Status::Ok();
  }

  Result<std::string> ExpectIdentifier() {
    if (!Peek().Is(TokenKind::kIdentifier)) {
      return Status(Error("expected identifier, found '" + Peek().text + "'"));
    }
    return Take().text;
  }

  bool DefinedType(const std::string& name) const {
    return defined_types_.contains(name);
  }

  Result<Type> ParseType() {
    const Token& t = Peek();
    if (t.Is(TokenKind::kIdentifier)) {
      if (!DefinedType(t.text)) {
        return Status(Error("unknown type '" + t.text + "'"));
      }
      Type type;
      type.kind = Type::Kind::kNamed;
      type.name = Take().text;
      return type;
    }
    if (!t.Is(TokenKind::kKeyword)) {
      return Status(Error("expected a type, found '" + t.text + "'"));
    }
    Type type;
    const std::string kw = Take().text;
    if (kw == "void") {
      type.kind = Type::Kind::kVoid;
    } else if (kw == "boolean") {
      type.kind = Type::Kind::kBoolean;
    } else if (kw == "octet") {
      type.kind = Type::Kind::kOctet;
    } else if (kw == "char") {
      type.kind = Type::Kind::kChar;
    } else if (kw == "short") {
      type.kind = Type::Kind::kShort;
    } else if (kw == "float") {
      type.kind = Type::Kind::kFloat;
    } else if (kw == "double") {
      type.kind = Type::Kind::kDouble;
    } else if (kw == "string") {
      type.kind = Type::Kind::kString;
    } else if (kw == "long") {
      if (Peek().IsKeyword("long")) {
        Take();
        type.kind = Type::Kind::kLongLong;
      } else {
        type.kind = Type::Kind::kLong;
      }
    } else if (kw == "unsigned") {
      if (Peek().IsKeyword("short")) {
        Take();
        type.kind = Type::Kind::kUShort;
      } else if (Peek().IsKeyword("long")) {
        Take();
        if (Peek().IsKeyword("long")) {
          Take();
          type.kind = Type::Kind::kULongLong;
        } else {
          type.kind = Type::Kind::kULong;
        }
      } else {
        return Status(Error("expected 'short' or 'long' after 'unsigned'"));
      }
    } else if (kw == "sequence") {
      COOL_RETURN_IF_ERROR(Expect(TokenKind::kLAngle));
      COOL_ASSIGN_OR_RETURN(Type element, ParseType());
      if (element.IsVoid()) {
        return Status(Error("sequence of void is not a type"));
      }
      COOL_RETURN_IF_ERROR(Expect(TokenKind::kRAngle));
      type.kind = Type::Kind::kSequence;
      type.element = std::make_shared<Type>(std::move(element));
    } else {
      return Status(Error("'" + kw + "' does not start a type"));
    }
    return type;
  }

  Result<std::vector<StructField>> ParseFieldList() {
    std::vector<StructField> fields;
    std::set<std::string> seen;
    while (!Peek().Is(TokenKind::kRBrace)) {
      StructField field;
      COOL_ASSIGN_OR_RETURN(field.type, ParseType());
      if (field.type.IsVoid()) {
        return Status(Error("field of type void"));
      }
      COOL_ASSIGN_OR_RETURN(field.name, ExpectIdentifier());
      if (!seen.insert(field.name).second) {
        return Status(Error("duplicate field '" + field.name + "'"));
      }
      COOL_RETURN_IF_ERROR(Expect(TokenKind::kSemicolon));
      fields.push_back(std::move(field));
    }
    return fields;
  }

  Result<StructDef> ParseStruct() {
    COOL_RETURN_IF_ERROR(ExpectKeyword("struct"));
    StructDef def;
    COOL_ASSIGN_OR_RETURN(def.name, ExpectIdentifier());
    COOL_RETURN_IF_ERROR(DefineType(def.name));
    COOL_RETURN_IF_ERROR(Expect(TokenKind::kLBrace));
    COOL_ASSIGN_OR_RETURN(def.fields, ParseFieldList());
    if (def.fields.empty()) {
      return Status(Error("struct '" + def.name + "' has no fields"));
    }
    COOL_RETURN_IF_ERROR(Expect(TokenKind::kRBrace));
    COOL_RETURN_IF_ERROR(Expect(TokenKind::kSemicolon));
    return def;
  }

  Result<EnumDef> ParseEnum() {
    COOL_RETURN_IF_ERROR(ExpectKeyword("enum"));
    EnumDef def;
    COOL_ASSIGN_OR_RETURN(def.name, ExpectIdentifier());
    COOL_RETURN_IF_ERROR(DefineType(def.name));
    COOL_RETURN_IF_ERROR(Expect(TokenKind::kLBrace));
    std::set<std::string> seen;
    for (;;) {
      COOL_ASSIGN_OR_RETURN(std::string enumerator, ExpectIdentifier());
      if (!seen.insert(enumerator).second) {
        return Status(Error("duplicate enumerator '" + enumerator + "'"));
      }
      def.enumerators.push_back(std::move(enumerator));
      if (Peek().Is(TokenKind::kComma)) {
        Take();
        continue;
      }
      break;
    }
    COOL_RETURN_IF_ERROR(Expect(TokenKind::kRBrace));
    COOL_RETURN_IF_ERROR(Expect(TokenKind::kSemicolon));
    return def;
  }

  Result<ExceptionDef> ParseException() {
    COOL_RETURN_IF_ERROR(ExpectKeyword("exception"));
    ExceptionDef def;
    COOL_ASSIGN_OR_RETURN(def.name, ExpectIdentifier());
    if (!defined_exceptions_.insert(def.name).second ||
        DefinedType(def.name)) {
      return Status(Error("duplicate name '" + def.name + "'"));
    }
    COOL_RETURN_IF_ERROR(Expect(TokenKind::kLBrace));
    COOL_ASSIGN_OR_RETURN(def.fields, ParseFieldList());
    COOL_RETURN_IF_ERROR(Expect(TokenKind::kRBrace));
    COOL_RETURN_IF_ERROR(Expect(TokenKind::kSemicolon));
    return def;
  }

  Result<Operation> ParseOperation() {
    Operation op;
    if (Peek().IsKeyword("oneway")) {
      Take();
      op.oneway = true;
    }
    COOL_ASSIGN_OR_RETURN(op.return_type, ParseType());
    COOL_ASSIGN_OR_RETURN(op.name, ExpectIdentifier());
    COOL_RETURN_IF_ERROR(Expect(TokenKind::kLParen));
    std::set<std::string> seen;
    while (!Peek().Is(TokenKind::kRParen)) {
      Param param;
      if (Peek().IsKeyword("in")) {
        Take();
        param.dir = ParamDir::kIn;
      } else if (Peek().IsKeyword("out")) {
        Take();
        param.dir = ParamDir::kOut;
      } else if (Peek().IsKeyword("inout")) {
        Take();
        param.dir = ParamDir::kInOut;
      } else {
        return Status(Error("expected parameter direction in/out/inout"));
      }
      COOL_ASSIGN_OR_RETURN(param.type, ParseType());
      if (param.type.IsVoid()) {
        return Status(Error("parameter of type void"));
      }
      COOL_ASSIGN_OR_RETURN(param.name, ExpectIdentifier());
      if (!seen.insert(param.name).second) {
        return Status(Error("duplicate parameter '" + param.name + "'"));
      }
      op.params.push_back(std::move(param));
      if (Peek().Is(TokenKind::kComma)) Take();
    }
    COOL_RETURN_IF_ERROR(Expect(TokenKind::kRParen));
    if (Peek().IsKeyword("raises")) {
      Take();
      COOL_RETURN_IF_ERROR(Expect(TokenKind::kLParen));
      for (;;) {
        COOL_ASSIGN_OR_RETURN(std::string name, ExpectIdentifier());
        if (!defined_exceptions_.contains(name)) {
          return Status(Error("raises names unknown exception '" + name +
                              "'"));
        }
        op.raises.push_back(std::move(name));
        if (Peek().Is(TokenKind::kComma)) {
          Take();
          continue;
        }
        break;
      }
      COOL_RETURN_IF_ERROR(Expect(TokenKind::kRParen));
    }
    COOL_RETURN_IF_ERROR(Expect(TokenKind::kSemicolon));

    if (op.oneway) {
      if (!op.return_type.IsVoid()) {
        return Status(Error("oneway operation must return void"));
      }
      if (!op.raises.empty()) {
        return Status(Error("oneway operation cannot raise exceptions"));
      }
      for (const Param& p : op.params) {
        if (p.dir != ParamDir::kIn) {
          return Status(Error("oneway operation allows in-parameters only"));
        }
      }
    }
    return op;
  }

  // Attributes desugar to operations per the CORBA C++ mapping:
  //   attribute T x;           ->  T _get_x();  void _set_x(in T value);
  //   readonly attribute T x;  ->  T _get_x();
  Status ParseAttribute(InterfaceDef& def, std::set<std::string>& seen) {
    bool readonly = false;
    if (Peek().IsKeyword("readonly")) {
      Take();
      readonly = true;
    }
    COOL_RETURN_IF_ERROR(ExpectKeyword("attribute"));
    Type type;
    COOL_ASSIGN_OR_RETURN(type, ParseType());
    if (type.IsVoid()) return Error("attribute of type void");
    std::string name;
    COOL_ASSIGN_OR_RETURN(name, ExpectIdentifier());
    COOL_RETURN_IF_ERROR(Expect(TokenKind::kSemicolon));

    Operation getter;
    getter.return_type = type;
    getter.name = "_get_" + name;
    if (!seen.insert(getter.name).second) {
      return Error("duplicate attribute '" + name + "'");
    }
    def.operations.push_back(std::move(getter));
    if (!readonly) {
      Operation setter;
      setter.return_type.kind = Type::Kind::kVoid;
      setter.name = "_set_" + name;
      Param value;
      value.dir = ParamDir::kIn;
      value.type = type;
      value.name = "value";
      setter.params.push_back(std::move(value));
      if (!seen.insert(setter.name).second) {
        return Error("duplicate attribute '" + name + "'");
      }
      def.operations.push_back(std::move(setter));
    }
    return Status::Ok();
  }

  Result<InterfaceDef> ParseInterface() {
    COOL_RETURN_IF_ERROR(ExpectKeyword("interface"));
    InterfaceDef def;
    COOL_ASSIGN_OR_RETURN(def.name, ExpectIdentifier());
    COOL_RETURN_IF_ERROR(DefineType(def.name));
    COOL_RETURN_IF_ERROR(Expect(TokenKind::kLBrace));
    std::set<std::string> seen;
    while (!Peek().Is(TokenKind::kRBrace)) {
      if (Peek().IsKeyword("readonly") || Peek().IsKeyword("attribute")) {
        COOL_RETURN_IF_ERROR(ParseAttribute(def, seen));
        continue;
      }
      COOL_ASSIGN_OR_RETURN(Operation op, ParseOperation());
      if (!seen.insert(op.name).second) {
        return Status(Error("duplicate operation '" + op.name + "'"));
      }
      def.operations.push_back(std::move(op));
    }
    COOL_RETURN_IF_ERROR(Expect(TokenKind::kRBrace));
    COOL_RETURN_IF_ERROR(Expect(TokenKind::kSemicolon));
    return def;
  }

  Result<TypedefDef> ParseTypedef() {
    COOL_RETURN_IF_ERROR(ExpectKeyword("typedef"));
    TypedefDef def;
    COOL_ASSIGN_OR_RETURN(def.type, ParseType());
    if (def.type.IsVoid()) return Status(Error("typedef of void"));
    COOL_ASSIGN_OR_RETURN(def.name, ExpectIdentifier());
    COOL_RETURN_IF_ERROR(DefineType(def.name));
    COOL_RETURN_IF_ERROR(Expect(TokenKind::kSemicolon));
    return def;
  }

  Result<ConstDef> ParseConst() {
    COOL_RETURN_IF_ERROR(ExpectKeyword("const"));
    ConstDef def;
    COOL_ASSIGN_OR_RETURN(def.type, ParseType());
    switch (def.type.kind) {
      case Type::Kind::kShort:
      case Type::Kind::kUShort:
      case Type::Kind::kLong:
      case Type::Kind::kULong:
      case Type::Kind::kLongLong:
      case Type::Kind::kULongLong:
      case Type::Kind::kOctet:
        break;
      default:
        return Status(Error("const supports integral types only"));
    }
    COOL_ASSIGN_OR_RETURN(def.name, ExpectIdentifier());
    COOL_RETURN_IF_ERROR(DefineType(def.name));  // occupies the name space
    COOL_RETURN_IF_ERROR(Expect(TokenKind::kEquals));
    if (!Peek().Is(TokenKind::kIntegerLiteral)) {
      return Status(Error("expected integer literal after '='"));
    }
    def.value = Take().text;
    COOL_RETURN_IF_ERROR(Expect(TokenKind::kSemicolon));
    return def;
  }

  Result<ModuleDef> ParseModule() {
    COOL_RETURN_IF_ERROR(ExpectKeyword("module"));
    ModuleDef module;
    COOL_ASSIGN_OR_RETURN(module.name, ExpectIdentifier());
    COOL_RETURN_IF_ERROR(Expect(TokenKind::kLBrace));
    using DefKind = ModuleDef::DefKind;
    while (!Peek().Is(TokenKind::kRBrace)) {
      if (Peek().IsKeyword("struct")) {
        COOL_ASSIGN_OR_RETURN(StructDef def, ParseStruct());
        module.order.emplace_back(DefKind::kStruct, module.structs.size());
        module.structs.push_back(std::move(def));
      } else if (Peek().IsKeyword("enum")) {
        COOL_ASSIGN_OR_RETURN(EnumDef def, ParseEnum());
        module.order.emplace_back(DefKind::kEnum, module.enums.size());
        module.enums.push_back(std::move(def));
      } else if (Peek().IsKeyword("exception")) {
        COOL_ASSIGN_OR_RETURN(ExceptionDef def, ParseException());
        module.order.emplace_back(DefKind::kException,
                                  module.exceptions.size());
        module.exceptions.push_back(std::move(def));
      } else if (Peek().IsKeyword("interface")) {
        COOL_ASSIGN_OR_RETURN(InterfaceDef def, ParseInterface());
        module.order.emplace_back(DefKind::kInterface,
                                  module.interfaces.size());
        module.interfaces.push_back(std::move(def));
      } else if (Peek().IsKeyword("typedef")) {
        COOL_ASSIGN_OR_RETURN(TypedefDef def, ParseTypedef());
        module.order.emplace_back(DefKind::kTypedef,
                                  module.typedefs.size());
        module.typedefs.push_back(std::move(def));
      } else if (Peek().IsKeyword("const")) {
        COOL_ASSIGN_OR_RETURN(ConstDef def, ParseConst());
        module.order.emplace_back(DefKind::kConst, module.consts.size());
        module.consts.push_back(std::move(def));
      } else {
        return Status(Error(
            "expected struct/enum/exception/interface/typedef/const, "
            "found '" +
            Peek().text + "'"));
      }
    }
    COOL_RETURN_IF_ERROR(Expect(TokenKind::kRBrace));
    COOL_RETURN_IF_ERROR(Expect(TokenKind::kSemicolon));
    return module;
  }

  Status DefineType(const std::string& name) {
    if (defined_exceptions_.contains(name) ||
        !defined_types_.insert(name).second) {
      return InvalidArgumentError("IDL parse error: duplicate name '" +
                                  name + "'");
    }
    return Status::Ok();
  }

  std::vector<Token> tokens_;
  std::size_t pos_ = 0;
  std::set<std::string> defined_types_;
  std::set<std::string> defined_exceptions_;
};

}  // namespace

Result<IdlFile> Parse(std::string_view source) {
  COOL_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(source));
  Parser parser(std::move(tokens));
  return parser.ParseFile();
}

}  // namespace cool::idl
