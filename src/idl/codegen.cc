#include "idl/codegen.h"

#include <algorithm>
#include <cctype>
#include <set>
#include <sstream>

#include "idl/parser.h"

namespace cool::idl {

namespace {

// Small emitter with indentation bookkeeping.
class Emitter {
 public:
  void Line(const std::string& text = "") {
    for (int i = 0; i < indent_; ++i) out_ << "  ";
    out_ << text << "\n";
  }
  void Open(const std::string& text) {
    Line(text);
    ++indent_;
  }
  void Close(const std::string& text = "}") {
    --indent_;
    Line(text);
  }
  std::string TakeText() { return out_.str(); }

 private:
  std::ostringstream out_;
  int indent_ = 0;
};

// Names of enum types in the current module: enums map to C++ enum class
// and pass by value like primitives.
using EnumNames = std::set<std::string>;

bool IsPrimitive(const Type& t) {
  switch (t.kind) {
    case Type::Kind::kSequence:
    case Type::Kind::kNamed:
    case Type::Kind::kVoid:
      return false;
    default:
      return true;
  }
}

// Pass by value for arithmetic types and enums, by const& otherwise.
bool PassByValue(const Type& t, const EnumNames& enums) {
  if (t.kind == Type::Kind::kNamed) return enums.contains(t.name);
  return IsPrimitive(t) && t.kind != Type::Kind::kString;
}

std::string InParamType(const Type& t, const EnumNames& enums) {
  return PassByValue(t, enums) ? CppTypeName(t)
                               : "const " + CppTypeName(t) + "&";
}

std::string Upper(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(), [](unsigned char c) {
    return static_cast<char>(std::toupper(c));
  });
  return s;
}

}  // namespace

std::string RepositoryId(const std::string& module_name,
                         const std::string& def_name) {
  return "IDL:" + module_name + "/" + def_name + ":1.0";
}

std::string CppTypeName(const Type& type) {
  switch (type.kind) {
    case Type::Kind::kVoid: return "void";
    case Type::Kind::kBoolean: return "::cool::corba::Boolean";
    case Type::Kind::kOctet: return "::cool::corba::Octet";
    case Type::Kind::kChar: return "::cool::corba::Char";
    case Type::Kind::kShort: return "::cool::corba::Short";
    case Type::Kind::kUShort: return "::cool::corba::UShort";
    case Type::Kind::kLong: return "::cool::corba::Long";
    case Type::Kind::kULong: return "::cool::corba::ULong";
    case Type::Kind::kLongLong: return "::cool::corba::LongLong";
    case Type::Kind::kULongLong: return "::cool::corba::ULongLong";
    case Type::Kind::kFloat: return "::cool::corba::Float";
    case Type::Kind::kDouble: return "::cool::corba::Double";
    case Type::Kind::kString: return "::cool::corba::String";
    case Type::Kind::kSequence:
      return "std::vector<" + CppTypeName(*type.element) + ">";
    case Type::Kind::kNamed:
      return type.name;
  }
  return "/*bad type*/void";
}

namespace {

void EmitFieldsCodec(Emitter& e, const std::string& type_name,
                     const std::vector<StructField>& fields) {
  e.Open("inline void Encode(::cool::cdr::Encoder& _e, const " + type_name +
         "& _v) {");
  for (const StructField& f : fields) {
    e.Line("Encode(_e, _v." + f.name + ");");
  }
  e.Close();
  e.Open("inline ::cool::Status Decode(::cool::cdr::Decoder& _d, " +
         type_name + "& _v) {");
  for (const StructField& f : fields) {
    e.Line("COOL_RETURN_IF_ERROR(Decode(_d, _v." + f.name + "));");
  }
  e.Line("return ::cool::Status::Ok();");
  e.Close();
  e.Line();
}

void EmitStruct(Emitter& e, const StructDef& def) {
  e.Open("struct " + def.name + " {");
  for (const StructField& f : def.fields) {
    e.Line(CppTypeName(f.type) + " " + f.name + "{};");
  }
  e.Line("friend bool operator==(const " + def.name + "&, const " +
         def.name + "&) = default;");
  e.Close("};");
  EmitFieldsCodec(e, def.name, def.fields);
}

void EmitEnum(Emitter& e, const EnumDef& def) {
  e.Open("enum class " + def.name + " : ::cool::corba::ULong {");
  for (std::size_t i = 0; i < def.enumerators.size(); ++i) {
    e.Line(def.enumerators[i] + " = " + std::to_string(i) + ",");
  }
  e.Close("};");
  e.Open("inline void Encode(::cool::cdr::Encoder& _e, " + def.name +
         " _v) {");
  e.Line("_e.PutULong(static_cast<::cool::corba::ULong>(_v));");
  e.Close();
  e.Open("inline ::cool::Status Decode(::cool::cdr::Decoder& _d, " +
         def.name + "& _v) {");
  e.Line("::cool::corba::ULong _raw{};");
  e.Line("COOL_ASSIGN_OR_RETURN(_raw, _d.GetULong());");
  e.Open("if (_raw >= " + std::to_string(def.enumerators.size()) + ") {");
  e.Line("return ::cool::ProtocolError(\"enum " + def.name +
         " value out of range\");");
  e.Close();
  e.Line("_v = static_cast<" + def.name + ">(_raw);");
  e.Line("return ::cool::Status::Ok();");
  e.Close();
  e.Line();
}

void EmitException(Emitter& e, const std::string& module_name,
                   const ExceptionDef& def) {
  e.Open("struct " + def.name + " {");
  e.Line("static constexpr const char* kRepoId = \"" +
         RepositoryId(module_name, def.name) + "\";");
  for (const StructField& f : def.fields) {
    e.Line(CppTypeName(f.type) + " " + f.name + "{};");
  }
  e.Line("friend bool operator==(const " + def.name + "&, const " +
         def.name + "&) = default;");
  e.Close("};");
  EmitFieldsCodec(e, def.name, def.fields);
}

std::string StubMethodSignature(const Operation& op, const EnumNames& enums) {
  std::ostringstream sig;
  if (op.return_type.IsVoid()) {
    sig << "::cool::Status";
  } else {
    sig << "::cool::Result<" << CppTypeName(op.return_type) << ">";
  }
  sig << " " << op.name << "(";
  bool first = true;
  for (const Param& p : op.params) {
    if (!first) sig << ", ";
    first = false;
    if (p.dir == ParamDir::kIn) {
      sig << InParamType(p.type, enums) << " " << p.name;
    } else {
      sig << CppTypeName(p.type) << "* " << p.name;
    }
  }
  sig << ")";
  return sig.str();
}

void EmitStubMethod(Emitter& e, const Operation& op,
                    const EnumNames& enums) {
  e.Open(StubMethodSignature(op, enums) + " {");
  e.Line("auto _enc = MakeArgsEncoder();");
  for (const Param& p : op.params) {
    if (p.dir == ParamDir::kIn) {
      e.Line("Encode(_enc, " + p.name + ");");
    } else if (p.dir == ParamDir::kInOut) {
      e.Line("Encode(_enc, *" + p.name + ");");
    }
  }
  if (op.oneway) {
    e.Line("return InvokeOneway(\"" + op.name +
           "\", _enc.buffer().view());");
    e.Close();
    e.Line();
    return;
  }
  e.Line("COOL_ASSIGN_OR_RETURN(auto _reply, Invoke(\"" + op.name +
         "\", _enc.buffer().view()));");
  e.Line("auto _dec = _reply.MakeDecoder();");
  e.Open(
      "if (_reply.status == ::cool::giop::ReplyStatus::kUserException) {");
  e.Line("return ::cool::Status(::cool::idl::rt::DecodeUserException(_dec));");
  e.Close();
  if (!op.return_type.IsVoid()) {
    e.Line(CppTypeName(op.return_type) + " _ret{};");
    e.Line("COOL_RETURN_IF_ERROR(Decode(_dec, _ret));");
  }
  for (const Param& p : op.params) {
    if (p.dir != ParamDir::kIn) {
      e.Line("COOL_RETURN_IF_ERROR(Decode(_dec, *" + p.name + "));");
    }
  }
  if (op.return_type.IsVoid()) {
    e.Line("return ::cool::Status::Ok();");
  } else {
    e.Line("return _ret;");
  }
  e.Close();
  e.Line();
}

void EmitStub(Emitter& e, const std::string& module_name,
              const InterfaceDef& def, const EnumNames& enums) {
  e.Line("// Client stub for interface " + def.name +
         ". Inherits setQoSParameter()");
  e.Line("// from cool::orb::Stub — the QoS hook Chic generates into every "
         "stub.");
  e.Open("class " + def.name + "Stub : public ::cool::orb::Stub {");
  e.Line(" public:");
  e.Line("using ::cool::orb::Stub::Stub;");
  e.Line("static constexpr const char* kRepoId = \"" +
         RepositoryId(module_name, def.name) + "\";");
  e.Line();
  for (const Operation& op : def.operations) {
    EmitStubMethod(e, op, enums);
  }
  e.Close("};");
  e.Line();
}

std::string SkeletonMethodSignature(const Operation& op, const EnumNames& enums) {
  std::ostringstream sig;
  if (op.return_type.IsVoid()) {
    sig << "::cool::Status";
  } else {
    sig << "::cool::Result<" << CppTypeName(op.return_type) << ">";
  }
  sig << " " << op.name << "(";
  bool first = true;
  for (const Param& p : op.params) {
    if (!first) sig << ", ";
    first = false;
    if (p.dir == ParamDir::kIn) {
      sig << InParamType(p.type, enums) << " " << p.name;
    } else {
      sig << CppTypeName(p.type) << "& " << p.name;
    }
  }
  sig << ")";
  return sig.str();
}

void EmitSkeletonDispatchArm(Emitter& e, const Operation& op) {
  e.Open("if (_op == \"" + op.name + "\") {");
  for (const Param& p : op.params) {
    e.Line(CppTypeName(p.type) + " " + p.name + "{};");
  }
  for (const Param& p : op.params) {
    if (p.dir != ParamDir::kOut) {
      e.Open("if (auto _s = Decode(_args, " + p.name + "); !_s.ok()) {");
      e.Line("return ::cool::orb::DispatchOutcome::Fail(");
      e.Line("    ::cool::InvalidArgumentError(_s.message()));");
      e.Close();
    }
  }
  std::ostringstream call;
  call << "auto _r = " << op.name << "(";
  bool first = true;
  for (const Param& p : op.params) {
    if (!first) call << ", ";
    first = false;
    call << p.name;
  }
  call << ");";
  e.Line(call.str());
  e.Open("if (_pending_exception) {");
  e.Line("(*_pending_exception)(_out);");
  e.Line("_pending_exception.reset();");
  e.Line("return ::cool::orb::DispatchOutcome::UserException();");
  e.Close();
  if (op.return_type.IsVoid()) {
    e.Line("if (!_r.ok()) return ::cool::orb::DispatchOutcome::Fail(_r);");
  } else {
    e.Line(
        "if (!_r.ok()) return "
        "::cool::orb::DispatchOutcome::Fail(_r.status());");
    e.Line("Encode(_out, *_r);");
  }
  for (const Param& p : op.params) {
    if (p.dir != ParamDir::kIn) {
      e.Line("Encode(_out, " + p.name + ");");
    }
  }
  e.Line("return ::cool::orb::DispatchOutcome::Ok();");
  e.Close();
}

void EmitSkeleton(Emitter& e, const std::string& module_name,
                  const InterfaceDef& def,
                  const std::vector<ExceptionDef>& exceptions,
                  const EnumNames& enums) {
  // Exceptions this interface can raise (union over operations).
  std::vector<std::string> raised;
  for (const Operation& op : def.operations) {
    for (const std::string& name : op.raises) {
      if (std::find(raised.begin(), raised.end(), name) == raised.end()) {
        raised.push_back(name);
      }
    }
  }
  (void)exceptions;

  e.Line("// Server skeleton for interface " + def.name +
         ": unmarshals requests,");
  e.Line("// upcalls the object implementation, marshals results (paper "
         "§2).");
  e.Open("class " + def.name + "Skeleton : public ::cool::orb::Servant {");
  e.Line(" public:");
  e.Open("std::string_view repository_id() const override {");
  e.Line("return \"" + RepositoryId(module_name, def.name) + "\";");
  e.Close();
  e.Line();
  e.Open(
      "::cool::orb::DispatchOutcome Dispatch(std::string_view _op, "
      "::cool::cdr::Decoder& _args, ::cool::cdr::Encoder& _out) override {");
  for (const Operation& op : def.operations) {
    EmitSkeletonDispatchArm(e, op);
  }
  e.Line("return ::cool::orb::DispatchOutcome::Fail(");
  e.Line("    ::cool::UnsupportedError(\"unknown operation '\" + "
         "std::string(_op) + \"' on " +
         def.name + "\"));");
  e.Close();
  e.Line();
  e.Line(" protected:");
  e.Line("// Object implementation API (override in the servant class).");
  for (const Operation& op : def.operations) {
    e.Line("virtual " + SkeletonMethodSignature(op, enums) + " = 0;");
  }
  if (!raised.empty()) {
    e.Line();
    e.Line("// Raise helpers: call before returning from an operation to "
           "turn the");
    e.Line("// reply into a USER_EXCEPTION.");
    for (const std::string& name : raised) {
      e.Open("void RaiseException(const " + name + "& _ex) {");
      e.Open("_pending_exception = [_ex](::cool::cdr::Encoder& _enc) {");
      e.Line("_enc.PutString(" + name + "::kRepoId);");
      e.Line("Encode(_enc, _ex);");
      e.Close("};");
      e.Close();
    }
  }
  e.Line();
  e.Line(" private:");
  e.Line(
      "std::optional<std::function<void(::cool::cdr::Encoder&)>> "
      "_pending_exception;");
  e.Close("};");
  e.Line();
}

}  // namespace

Result<std::string> GenerateHeader(const IdlFile& file,
                                   const CodegenOptions& options) {
  Emitter e;
  const std::string guard = "COOL_IDL_GEN_" + Upper(options.guard_name) + "_H";
  e.Line("// Generated by chic (COOL IDL compiler reproduction). Do not "
         "edit.");
  e.Line("#ifndef " + guard);
  e.Line("#define " + guard);
  e.Line();
  e.Line("#include <functional>");
  e.Line("#include <optional>");
  e.Line("#include <string>");
  e.Line("#include <vector>");
  e.Line();
  e.Line("#include \"idl/runtime.h\"");
  e.Line("#include \"orb/servant.h\"");
  e.Line("#include \"orb/stub.h\"");
  e.Line();

  for (const ModuleDef& module : file.modules) {
    e.Open("namespace " + module.name + " {");
    e.Line();
    e.Line("using ::cool::idl::rt::Encode;");
    e.Line("using ::cool::idl::rt::Decode;");
    e.Line("namespace corba = ::cool::corba;");
    e.Line();
    EnumNames enums;
    for (const EnumDef& def : module.enums) enums.insert(def.name);
    // Emit in source order: the parser enforces define-before-use, so this
    // keeps every generated name declared before its first use.
    using DefKind = ModuleDef::DefKind;
    for (const auto& [kind, index] : module.order) {
      switch (kind) {
        case DefKind::kEnum:
          EmitEnum(e, module.enums[index]);
          break;
        case DefKind::kStruct:
          EmitStruct(e, module.structs[index]);
          break;
        case DefKind::kException:
          EmitException(e, module.name, module.exceptions[index]);
          break;
        case DefKind::kTypedef: {
          const TypedefDef& def = module.typedefs[index];
          e.Line("using " + def.name + " = " + CppTypeName(def.type) + ";");
          e.Line();
          break;
        }
        case DefKind::kConst: {
          const ConstDef& def = module.consts[index];
          e.Line("inline constexpr " + CppTypeName(def.type) + " " +
                 def.name + " = " + def.value + ";");
          e.Line();
          break;
        }
        case DefKind::kInterface:
          EmitStub(e, module.name, module.interfaces[index], enums);
          EmitSkeleton(e, module.name, module.interfaces[index],
                       module.exceptions, enums);
          break;
      }
    }
    e.Close("}  // namespace " + module.name);
    e.Line();
  }
  e.Line("#endif  // " + guard);
  return e.TakeText();
}

Result<std::string> CompileIdl(std::string_view source,
                               const CodegenOptions& options) {
  COOL_ASSIGN_OR_RETURN(IdlFile file, Parse(source));
  return GenerateHeader(file, options);
}

}  // namespace cool::idl
