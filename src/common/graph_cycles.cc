#include "common/graph_cycles.h"

#include <algorithm>
#include <cstddef>
#include <unordered_map>
#include <vector>

namespace cool {
namespace {

// GraphId handle layout: low 32 bits = slot index, high 32 bits = version.
// Version 0 is reserved so the zero handle is always invalid.
constexpr std::uint64_t MakeHandle(std::uint32_t index, std::uint32_t version) {
  return (static_cast<std::uint64_t>(version) << 32) | index;
}
constexpr std::uint32_t HandleIndex(std::uint64_t h) {
  return static_cast<std::uint32_t>(h & 0xffffffffu);
}
constexpr std::uint32_t HandleVersion(std::uint64_t h) {
  return static_cast<std::uint32_t>(h >> 32);
}

struct Node {
  bool in_use = false;
  bool visited = false;          // scratch for the DFS passes
  std::uint32_t version = 1;     // bumped on free; never 0
  std::int64_t rank = 0;         // topological order: edge a->b => rank[a] < rank[b]
  void* ptr = nullptr;
  void* info = nullptr;
  std::vector<std::uint32_t> out;
  std::vector<std::uint32_t> in;
};

void EraseValue(std::vector<std::uint32_t>& v, std::uint32_t x) {
  auto it = std::find(v.begin(), v.end(), x);
  if (it != v.end()) {
    *it = v.back();
    v.pop_back();
  }
}

bool Contains(const std::vector<std::uint32_t>& v, std::uint32_t x) {
  return std::find(v.begin(), v.end(), x) != v.end();
}

}  // namespace

struct GraphCycles::Rep {
  std::vector<Node> nodes;
  std::vector<std::uint32_t> free_slots;
  std::unordered_map<void*, std::uint32_t> index_of;
  std::int64_t next_rank = 1;
  std::int64_t edge_count = 0;

  // Scratch buffers for InsertEdge's reordering passes (kept across calls
  // to avoid churn; the detector serializes access anyway).
  std::vector<std::uint32_t> delta_f;  // reachable from the new edge's head
  std::vector<std::uint32_t> delta_b;  // reaching the new edge's tail
  std::vector<std::uint32_t> stack;

  // Resolves a handle to a live slot index, or rejects stale/invalid ids.
  bool Resolve(GraphId id, std::uint32_t* index) const {
    const std::uint32_t i = HandleIndex(id.handle);
    if (i >= nodes.size()) return false;
    const Node& n = nodes[i];
    if (!n.in_use || n.version != HandleVersion(id.handle)) return false;
    *index = i;
    return true;
  }

  // DFS from `start` along out-edges, restricted to ranks <= `bound`.
  // Returns true (and leaves visited marks set) unless `target` was hit, in
  // which case marks are cleared and false is returned (cycle found).
  // Visited nodes are appended to delta_f.
  bool ForwardDfs(std::uint32_t start, std::uint32_t target,
                  std::int64_t bound) {
    delta_f.clear();
    stack.clear();
    stack.push_back(start);
    while (!stack.empty()) {
      const std::uint32_t i = stack.back();
      stack.pop_back();
      Node& n = nodes[i];
      if (n.visited) continue;
      n.visited = true;
      delta_f.push_back(i);
      for (std::uint32_t succ : n.out) {
        if (succ == target) {
          for (std::uint32_t j : delta_f) nodes[j].visited = false;
          return false;
        }
        if (!nodes[succ].visited && nodes[succ].rank <= bound) {
          stack.push_back(succ);
        }
      }
    }
    return true;
  }

  // DFS from `start` along in-edges, restricted to ranks >= `bound`.
  // Appends visited nodes to delta_b. Never sees delta_f nodes: every
  // delta_f rank is <= bound-side by construction (ranks are disjoint
  // because no path exists between the regions — ForwardDfs proved it).
  void BackwardDfs(std::uint32_t start, std::int64_t bound) {
    delta_b.clear();
    stack.clear();
    stack.push_back(start);
    while (!stack.empty()) {
      const std::uint32_t i = stack.back();
      stack.pop_back();
      Node& n = nodes[i];
      if (n.visited) continue;
      n.visited = true;
      delta_b.push_back(i);
      for (std::uint32_t pred : n.in) {
        if (!nodes[pred].visited && nodes[pred].rank >= bound) {
          stack.push_back(pred);
        }
      }
    }
  }

  // Pearce–Kelly reorder: the nodes of delta_b (which must all precede the
  // new edge's tail) and delta_f (which must all follow its head) exchange
  // ranks so that every delta_b rank sorts before every delta_f rank,
  // preserving relative order inside each region.
  void Reorder() {
    SortByRank(delta_b);
    SortByRank(delta_f);
    // Gather the union of ranks, then deal them back: delta_b first.
    std::vector<std::int64_t> ranks;
    ranks.reserve(delta_b.size() + delta_f.size());
    for (std::uint32_t i : delta_b) ranks.push_back(nodes[i].rank);
    for (std::uint32_t i : delta_f) ranks.push_back(nodes[i].rank);
    std::sort(ranks.begin(), ranks.end());
    std::size_t k = 0;
    for (std::uint32_t i : delta_b) {
      nodes[i].rank = ranks[k++];
      nodes[i].visited = false;
    }
    for (std::uint32_t i : delta_f) {
      nodes[i].rank = ranks[k++];
      nodes[i].visited = false;
    }
  }

  void SortByRank(std::vector<std::uint32_t>& v) {
    std::sort(v.begin(), v.end(), [this](std::uint32_t a, std::uint32_t b) {
      return nodes[a].rank < nodes[b].rank;
    });
  }
};

GraphCycles::GraphCycles() : rep_(std::make_unique<Rep>()) {}
GraphCycles::~GraphCycles() = default;

GraphId GraphCycles::GetId(void* ptr) {
  auto it = rep_->index_of.find(ptr);
  if (it != rep_->index_of.end()) {
    const Node& n = rep_->nodes[it->second];
    return GraphId{MakeHandle(it->second, n.version)};
  }
  std::uint32_t index = 0;
  if (!rep_->free_slots.empty()) {
    index = rep_->free_slots.back();
    rep_->free_slots.pop_back();
  } else {
    index = static_cast<std::uint32_t>(rep_->nodes.size());
    rep_->nodes.emplace_back();
  }
  Node& n = rep_->nodes[index];
  n.in_use = true;
  n.rank = rep_->next_rank++;
  n.ptr = ptr;
  n.info = nullptr;
  rep_->index_of.emplace(ptr, index);
  return GraphId{MakeHandle(index, n.version)};
}

void GraphCycles::RemoveNode(void* ptr) {
  auto it = rep_->index_of.find(ptr);
  if (it == rep_->index_of.end()) return;
  const std::uint32_t index = it->second;
  Node& n = rep_->nodes[index];
  for (std::uint32_t succ : n.out) EraseValue(rep_->nodes[succ].in, index);
  for (std::uint32_t pred : n.in) EraseValue(rep_->nodes[pred].out, index);
  rep_->edge_count -= static_cast<std::int64_t>(n.out.size() + n.in.size());
  n.out.clear();
  n.in.clear();
  n.in_use = false;
  n.ptr = nullptr;
  n.info = nullptr;
  ++n.version;  // stale GraphIds stop resolving
  rep_->index_of.erase(it);
  rep_->free_slots.push_back(index);
}

void* GraphCycles::Ptr(GraphId id) const {
  std::uint32_t index = 0;
  return rep_->Resolve(id, &index) ? rep_->nodes[index].ptr : nullptr;
}

bool GraphCycles::InsertEdge(GraphId x, GraphId y) {
  std::uint32_t xi = 0;
  std::uint32_t yi = 0;
  if (!rep_->Resolve(x, &xi) || !rep_->Resolve(y, &yi)) return false;
  if (xi == yi) return false;  // self-edge: trivial cycle
  Node& xn = rep_->nodes[xi];
  Node& yn = rep_->nodes[yi];
  if (Contains(xn.out, yi)) return true;  // already ordered this way
  if (xn.rank < yn.rank) {
    // Topological order already consistent; no reordering needed.
    xn.out.push_back(yi);
    yn.in.push_back(xi);
    ++rep_->edge_count;
    return true;
  }
  // The new edge contradicts the current order. Search the affected region
  // forward from y; finding x there means a path y ->* x exists, so the
  // edge x -> y would close a cycle.
  if (!rep_->ForwardDfs(yi, xi, xn.rank)) return false;
  rep_->BackwardDfs(xi, yn.rank);
  rep_->Reorder();
  rep_->nodes[xi].out.push_back(yi);
  rep_->nodes[yi].in.push_back(xi);
  ++rep_->edge_count;
  return true;
}

void GraphCycles::RemoveEdge(GraphId x, GraphId y) {
  std::uint32_t xi = 0;
  std::uint32_t yi = 0;
  if (!rep_->Resolve(x, &xi) || !rep_->Resolve(y, &yi)) return;
  if (!Contains(rep_->nodes[xi].out, yi)) return;
  EraseValue(rep_->nodes[xi].out, yi);
  EraseValue(rep_->nodes[yi].in, xi);
  --rep_->edge_count;
}

bool GraphCycles::HasEdge(GraphId x, GraphId y) const {
  std::uint32_t xi = 0;
  std::uint32_t yi = 0;
  if (!rep_->Resolve(x, &xi) || !rep_->Resolve(y, &yi)) return false;
  return Contains(rep_->nodes[xi].out, yi);
}

int GraphCycles::FindPath(GraphId x, GraphId y, int max_len,
                          GraphId path[]) const {
  std::uint32_t xi = 0;
  std::uint32_t yi = 0;
  if (!rep_->Resolve(x, &xi) || !rep_->Resolve(y, &yi)) return 0;
  // Iterative DFS from y looking for x, tracking the path. Bounded by the
  // node count; `via` remembers each visited node's predecessor.
  std::unordered_map<std::uint32_t, std::uint32_t> via;
  std::vector<std::uint32_t> stack{yi};
  via.emplace(yi, yi);
  bool found = (yi == xi);
  while (!found && !stack.empty()) {
    const std::uint32_t i = stack.back();
    stack.pop_back();
    for (std::uint32_t succ : rep_->nodes[i].out) {
      if (via.contains(succ)) continue;
      via.emplace(succ, i);
      if (succ == xi) {
        found = true;
        break;
      }
      stack.push_back(succ);
    }
  }
  if (!found) return 0;
  // Walk back x -> y, then reverse into y -> ... -> x order.
  std::vector<std::uint32_t> rev;
  for (std::uint32_t i = xi;; i = via[i]) {
    rev.push_back(i);
    if (i == yi) break;
  }
  const int n = static_cast<int>(rev.size());
  for (int k = 0; k < n && k < max_len; ++k) {
    const std::uint32_t i = rev[static_cast<std::size_t>(n - 1 - k)];
    path[k] = GraphId{MakeHandle(i, rep_->nodes[i].version)};
  }
  return n;
}

void GraphCycles::SetNodeInfo(GraphId id, void* info) {
  std::uint32_t index = 0;
  if (rep_->Resolve(id, &index)) rep_->nodes[index].info = info;
}

void* GraphCycles::GetNodeInfo(GraphId id) const {
  std::uint32_t index = 0;
  return rep_->Resolve(id, &index) ? rep_->nodes[index].info : nullptr;
}

std::int64_t GraphCycles::num_nodes() const {
  return static_cast<std::int64_t>(rep_->index_of.size());
}

std::int64_t GraphCycles::num_edges() const { return rep_->edge_count; }

bool GraphCycles::CheckInvariants() const {
  std::unordered_map<std::int64_t, std::uint32_t> rank_seen;
  for (std::uint32_t i = 0; i < rep_->nodes.size(); ++i) {
    const Node& n = rep_->nodes[i];
    if (!n.in_use) continue;
    if (n.visited) return false;  // scratch marks must not leak
    if (!rank_seen.emplace(n.rank, i).second) return false;  // dup rank
    for (std::uint32_t succ : n.out) {
      if (!rep_->nodes[succ].in_use) return false;
      if (n.rank >= rep_->nodes[succ].rank) return false;  // order broken
      if (!Contains(rep_->nodes[succ].in, i)) return false;
    }
    for (std::uint32_t pred : n.in) {
      if (!Contains(rep_->nodes[pred].out, i)) return false;
    }
  }
  return true;
}

}  // namespace cool
