// Deterministic PRNG (splitmix64 core) for loss/jitter injection in the
// simulated network and for property-test data. Seeded explicitly so every
// test and benchmark run is reproducible.
#pragma once

#include <cstdint>
#include <limits>

namespace cool {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) : state_(seed) {}

  std::uint64_t NextU64() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  // Uniform in [0, bound); bound must be > 0.
  std::uint64_t NextBelow(std::uint64_t bound) noexcept {
    return NextU64() % bound;
  }

  // Uniform in [lo, hi] inclusive.
  std::int64_t NextInRange(std::int64_t lo, std::int64_t hi) noexcept {
    return lo + static_cast<std::int64_t>(
                    NextBelow(static_cast<std::uint64_t>(hi - lo + 1)));
  }

  // Uniform double in [0, 1).
  double NextDouble() noexcept {
    return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
  }

  // Bernoulli trial.
  bool NextBool(double p_true) noexcept { return NextDouble() < p_true; }

  std::uint8_t NextByte() noexcept {
    return static_cast<std::uint8_t>(NextU64() & 0xff);
  }

 private:
  std::uint64_t state_;
};

}  // namespace cool
