// Log-bucketed latency histogram: fixed 16 KiB footprint, constant-time
// Add, mergeable, with percentile extraction (p50/p99/p99.9) bounded by
// ~3% relative error above 32 and exact below. The scheduler's per-class
// sojourn stats and the benchmarks both record through this type, so
// "histograms, not mean-only rows" means one shared representation.
//
// Bucketing is HDR-style: values below 2^kSubBits land in exact unit
// buckets; above that, each power-of-two octave splits into 2^kSubBits
// sub-buckets, so the bucket width is always <= value / 2^kSubBits.
// Percentiles report the bucket's *upper* edge (pessimistic for tails),
// clamped to the exact observed maximum.
//
// Not internally synchronized: callers guard it with whatever lock guards
// the stats it sits next to, the same contract as the counters around it.
#pragma once

#include <algorithm>
#include <array>
#include <bit>
#include <cstdint>

namespace cool {

class Histogram {
 public:
  static constexpr unsigned kSubBits = 5;  // 32 sub-buckets per octave
  static constexpr std::uint64_t kSub = std::uint64_t{1} << kSubBits;
  // 64 octaves max; indices stay well inside this.
  static constexpr std::size_t kBuckets = (64 - kSubBits + 1) << kSubBits;

  void Add(std::uint64_t value) {
    counts_[IndexOf(value)]++;
    ++count_;
    sum_ += value;
    min_ = count_ == 1 ? value : std::min(min_, value);
    max_ = std::max(max_, value);
  }

  void Merge(const Histogram& other) {
    if (other.count_ == 0) return;
    for (std::size_t i = 0; i < kBuckets; ++i) counts_[i] += other.counts_[i];
    min_ = count_ == 0 ? other.min_ : std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
    count_ += other.count_;
    sum_ += other.sum_;
  }

  void Reset() { *this = Histogram(); }

  // Value at or below which `p` percent (0 < p <= 100) of samples fall,
  // reported as the containing bucket's upper edge. 0 when empty.
  std::uint64_t Percentile(double p) const {
    if (count_ == 0) return 0;
    const double clamped = std::clamp(p, 0.0, 100.0);
    auto rank = static_cast<std::uint64_t>(clamped / 100.0 *
                                           static_cast<double>(count_));
    rank = std::clamp<std::uint64_t>(rank, 1, count_);
    std::uint64_t seen = 0;
    for (std::size_t i = 0; i < kBuckets; ++i) {
      seen += counts_[i];
      if (seen >= rank) {
        return std::clamp(BucketUpperEdge(i), min_, max_);
      }
    }
    return max_;
  }

  std::uint64_t count() const { return count_; }
  std::uint64_t sum() const { return sum_; }
  std::uint64_t min() const { return count_ == 0 ? 0 : min_; }
  std::uint64_t max() const { return max_; }
  double Mean() const {
    return count_ == 0 ? 0.0
                       : static_cast<double>(sum_) / static_cast<double>(count_);
  }

  static std::size_t IndexOf(std::uint64_t value) {
    if (value < kSub) return static_cast<std::size_t>(value);
    const unsigned msb = std::bit_width(value) - 1;  // >= kSubBits
    const unsigned shift = msb - kSubBits;
    const auto sub = static_cast<std::size_t>((value >> shift) & (kSub - 1));
    // Octave `msb` starts at block (msb - kSubBits + 1); block 0 is the
    // exact range [0, kSub).
    return ((msb - kSubBits + 1) << kSubBits) + sub;
  }

  static std::uint64_t BucketUpperEdge(std::size_t index) {
    const std::size_t block = index >> kSubBits;
    const std::uint64_t sub = index & (kSub - 1);
    if (block == 0) return sub;  // exact buckets
    const unsigned shift = static_cast<unsigned>(block - 1);
    const std::uint64_t lower = (kSub + sub) << shift;
    return lower + ((std::uint64_t{1} << shift) - 1);
  }

 private:
  std::array<std::uint64_t, kBuckets> counts_{};
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
  std::uint64_t min_ = 0;
  std::uint64_t max_ = 0;
};

}  // namespace cool
