// Declared lock-rank hierarchy (DESIGN.md §11). Every named cool::Mutex /
// cool::SharedMutex in src/ is constructed with one of these ranks; a
// thread may only acquire a lock whose rank is <= the minimum rank it
// already holds (outer locks have higher ranks). The machine-readable
// twin of this enum lives in scripts/lock_order.yaml — check_invariants.py
// cross-checks the two against every Mutex declaration in the tree, and
// the runtime detector (common/deadlock.h, COOL_DEADLOCK_DETECTOR=ON)
// enforces the same order on every acquisition, plus full cycle detection
// among same-rank locks.
//
// Realized order, outermost (acquired first) to innermost:
//
//   kStream > kOrb > kAdapterShard > kEngine > kDispatchPool > kChannel
//           > kSession > kMailbox > kSimNetwork > kWaitSet > kLeaf
//
// Two deliberate refinements over the coarse "ORB > adapter > engine >
// pool > session > mailbox > transport > waitset" sketch: the transport
// *channel* locks (kChannel) sit above kSession/kMailbox because
// DacapoComChannel wraps a dacapo::Session (a channel send holds tx_mu_
// across Session::SendWith, which takes plane_mu_ then the mailbox lock),
// while the simulated-network socket locks (kSimNetwork) sit below them —
// they are the innermost I/O layer and post to wait sets last. kStream
// tops the table because the stream adapter (layer 7) drives ORB and
// session operations from under its own locks.
#pragma once

namespace cool {

enum class LockRank : int {
  // Wildcard for unranked lock users (tests, scratch tooling): exempt from
  // the rank monotonicity check, still part of cycle detection.
  kUnranked = -1,

  // Leaf utilities that never acquire another lock while held: buffer
  // pool, packet arenas, blocking queues, registries, stats counters.
  kLeaf = 0,

  // sim::WaitSet cores and Watchables — the readiness primitive
  // everything else posts into.
  kWaitSet = 10,

  // Simulated network internals (pipes, accept queues, datagram ports).
  kSimNetwork = 20,

  // Da CaPo mailboxes between protocol modules.
  kMailbox = 30,

  // Da CaPo session state (plane pointer, error slot, resource manager).
  kSession = 40,

  // Transport ComChannel locks (tcp/ipc/dacapo tx/rx/qos serialization)
  // and the reactor/epoll bookkeeping locks.
  kChannel = 50,

  // giop::DispatchPool queues (shared pool and GiopServer private pool).
  kDispatchPool = 60,

  // GIOP engine state: client demux table and send serialization, server
  // send serialization, COOL-protocol baseline.
  kEngine = 70,

  // Object-adapter servant shards.
  kAdapterShard = 80,

  // ORB-level state: connection table, naming, stubs, module registry.
  kOrb = 90,

  // Stream adapter / flow state (drives ORB calls from under its locks).
  kStream = 100,
};

constexpr int LockRankValue(LockRank r) noexcept { return static_cast<int>(r); }

constexpr const char* LockRankName(LockRank r) noexcept {
  switch (r) {
    case LockRank::kUnranked: return "kUnranked";
    case LockRank::kLeaf: return "kLeaf";
    case LockRank::kWaitSet: return "kWaitSet";
    case LockRank::kSimNetwork: return "kSimNetwork";
    case LockRank::kMailbox: return "kMailbox";
    case LockRank::kSession: return "kSession";
    case LockRank::kChannel: return "kChannel";
    case LockRank::kDispatchPool: return "kDispatchPool";
    case LockRank::kEngine: return "kEngine";
    case LockRank::kAdapterShard: return "kAdapterShard";
    case LockRank::kOrb: return "kOrb";
    case LockRank::kStream: return "kStream";
  }
  return "?";
}

}  // namespace cool
