// Time primitives shared by the simulated network, Da CaPo pacing and the
// benchmarks. All durations are steady-clock based; wall time never appears
// in protocol logic.
#pragma once

#include <chrono>
#include <cstdint>
#include <thread>

namespace cool {

using Clock = std::chrono::steady_clock;
using TimePoint = Clock::time_point;
using Duration = Clock::duration;

using std::chrono::microseconds;
using std::chrono::milliseconds;
using std::chrono::nanoseconds;
using std::chrono::seconds;

inline TimePoint Now() noexcept { return Clock::now(); }

// Saturating deadline: `Now() + timeout` wraps negative for
// Duration::max()-style "wait forever" callers. Every site that converts a
// caller-supplied timeout into an absolute deadline must go through here.
inline TimePoint DeadlineFor(Duration timeout) noexcept {
  const TimePoint now = Now();
  if (timeout >= TimePoint::max() - now) return TimePoint::max();
  return now + timeout;
}

inline TimePoint DeadlineFrom(TimePoint now, Duration timeout) noexcept {
  if (timeout >= TimePoint::max() - now) return TimePoint::max();
  return now + timeout;
}

inline double ToSeconds(Duration d) noexcept {
  return std::chrono::duration<double>(d).count();
}

inline double ToMillis(Duration d) noexcept {
  return std::chrono::duration<double, std::milli>(d).count();
}

inline double ToMicros(Duration d) noexcept {
  return std::chrono::duration<double, std::micro>(d).count();
}

// Busy-wait under ~50us (sleep granularity on most kernels is worse than
// that), otherwise sleep. Used for link pacing in the simulated network.
inline void PreciseSleep(Duration d) {
  if (d <= Duration::zero()) return;
  const TimePoint deadline = Now() + d;
  if (d > microseconds(50)) {
    std::this_thread::sleep_until(deadline - microseconds(30));
  }
  while (Now() < deadline) {
    // spin
  }
}

// Elapsed-time helper for measurements.
class Stopwatch {
 public:
  Stopwatch() : start_(Now()) {}
  void Reset() { start_ = Now(); }
  Duration Elapsed() const { return Now() - start_; }
  double ElapsedSeconds() const { return ToSeconds(Elapsed()); }

 private:
  TimePoint start_;
};

}  // namespace cool
