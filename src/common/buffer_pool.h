// BufferPool: a bounded free list of byte-vector backing stores, so the
// per-invocation buffers on the hot path (CDR argument encoding, GIOP frame
// assembly, transport receive) are leased and recycled instead of heap
// allocated per call. A leased ByteBuffer remembers its pool and returns
// its storage on destruction (or when moved-over), keeping the grown
// capacity warm for the next invocation.
//
// Ownership rules (see DESIGN.md "Buffer ownership and lifetimes"):
//  - Lease() hands out an empty ByteBuffer homed to this pool.
//  - Destroying (or move-assigning over) the buffer recycles the storage.
//  - Copying a pooled buffer yields an unpooled copy; moving transfers the
//    pool homing. The pool must outlive every leased buffer — use
//    BufferPool::Default() (never destroyed) unless a scoped pool's
//    lifetime is provably wider than its leases.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/byte_buffer.h"
#include "common/mutex.h"

namespace cool {

class BufferPool {
 public:
  struct Options {
    // Free-list cap; storage returned beyond this is freed outright.
    std::size_t max_buffers = 64;
    // Buffers grown past this are not cached (protects against one jumbo
    // message pinning megabytes in the free list).
    std::size_t max_capacity = 1 << 20;
    // Capacity given to a lease that missed the free list.
    std::size_t initial_reserve = 4096;
  };

  struct Stats {
    std::uint64_t hits = 0;    // leases served from the free list
    std::uint64_t misses = 0;  // leases that had to allocate
    std::size_t free_buffers = 0;
  };

  BufferPool() = default;
  explicit BufferPool(const Options& options) : options_(options) {}

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  // Returns an empty buffer homed to this pool with at least
  // max(reserve, initial_reserve) octets of capacity.
  ByteBuffer Lease(std::size_t reserve = 0);

  Stats stats() const;

  // Process-wide pool used by the invocation path. Never destroyed, so
  // leases in detached threads can safely outlive static teardown.
  static BufferPool& Default();

 private:
  friend class ByteBuffer;

  // Takes storage back from a dying/moved-over leased buffer.
  void Recycle(std::vector<std::uint8_t>&& storage);

  const Options options_;
  mutable Mutex mu_{LockRank::kLeaf, "BufferPool::mu_"};
  std::vector<std::vector<std::uint8_t>> free_ COOL_GUARDED_BY(mu_);
  std::uint64_t hits_ COOL_GUARDED_BY(mu_) = 0;
  std::uint64_t misses_ COOL_GUARDED_BY(mu_) = 0;
};

}  // namespace cool
