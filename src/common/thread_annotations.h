// Clang -Wthread-safety attribute macros (no-ops elsewhere). The wrappers
// in common/mutex.h carry these; user code annotates shared state with
// COOL_GUARDED_BY and lock-discipline contracts with COOL_REQUIRES etc.
//
// Reference: https://clang.llvm.org/docs/ThreadSafetyAnalysis.html
#pragma once

#if defined(__clang__) && !defined(SWIG)
#define COOL_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define COOL_THREAD_ANNOTATION(x)  // no-op
#endif

// On a mutex-like class: declares it a capability the analysis tracks.
#define COOL_CAPABILITY(x) COOL_THREAD_ANNOTATION(capability(x))

// On a scoped lock class (ctor acquires, dtor releases).
#define COOL_SCOPED_CAPABILITY COOL_THREAD_ANNOTATION(scoped_lockable)

// On a data member: may only be read/written while `x` is held.
#define COOL_GUARDED_BY(x) COOL_THREAD_ANNOTATION(guarded_by(x))

// On a pointer member: the *pointed-to* data is protected by `x`.
#define COOL_PT_GUARDED_BY(x) COOL_THREAD_ANNOTATION(pt_guarded_by(x))

// On a function: caller must hold the capability (exclusively / shared).
#define COOL_REQUIRES(...) \
  COOL_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define COOL_REQUIRES_SHARED(...) \
  COOL_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))

// On a function: acquires / releases the capability.
#define COOL_ACQUIRE(...) \
  COOL_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define COOL_ACQUIRE_SHARED(...) \
  COOL_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))
#define COOL_RELEASE(...) \
  COOL_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define COOL_RELEASE_SHARED(...) \
  COOL_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))
#define COOL_RELEASE_GENERIC(...) \
  COOL_THREAD_ANNOTATION(release_generic_capability(__VA_ARGS__))

// On a try-lock: acquires the capability iff the return value is `b`.
#define COOL_TRY_ACQUIRE(b, ...) \
  COOL_THREAD_ANNOTATION(try_acquire_capability(b, __VA_ARGS__))

// On a function: caller must NOT hold the capability (deadlock guard).
#define COOL_EXCLUDES(...) COOL_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

// On a mutex member: declares lock-order relative to other mutexes — this
// one is acquired before/after the listed ones. Documents the DESIGN.md
// §11 hierarchy at the declaration site; the authoritative machine-checked
// ranking is the LockRank argument (common/lock_rank.h) cross-checked
// against scripts/lock_order.yaml, and the runtime detector enforces it.
#define COOL_ACQUIRED_BEFORE(...) \
  COOL_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
#define COOL_ACQUIRED_AFTER(...) \
  COOL_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))

// On a function: runtime assertion that the capability is held.
#define COOL_ASSERT_CAPABILITY(x) \
  COOL_THREAD_ANNOTATION(assert_capability(x))

// On a function returning a reference to a mutex guarding this object.
#define COOL_RETURN_CAPABILITY(x) COOL_THREAD_ANNOTATION(lock_returned(x))

// Escape hatch for code the analysis cannot model (keep rare; the
// invariant linter counts uses).
#define COOL_NO_THREAD_SAFETY_ANALYSIS \
  COOL_THREAD_ANNOTATION(no_thread_safety_analysis)
