// Intrusive doubly-linked list: the `_dlink` / `_dlist` pair from the COOL
// runtime class hierarchy (paper Fig. 8), used there to manage buffers and
// communication channels. Nodes embed a DLink; the list never allocates.
#pragma once

#include <cassert>
#include <cstddef>
#include <iterator>

namespace cool {

// Embed a DLink member (or inherit from it) to make a type list-able.
// A DLink knows whether it is currently on a list and unlinks itself on
// destruction, so destroying a channel/buffer automatically deregisters it.
class DLink {
 public:
  DLink() noexcept = default;
  ~DLink() { Unlink(); }

  DLink(const DLink&) = delete;
  DLink& operator=(const DLink&) = delete;

  bool linked() const noexcept { return next_ != nullptr; }

  // Removes this node from whatever list holds it; no-op when unlinked.
  void Unlink() noexcept {
    if (!linked()) return;
    prev_->next_ = next_;
    next_->prev_ = prev_;
    next_ = prev_ = nullptr;
  }

 private:
  template <typename T, DLink T::* Member>
  friend class DList;

  void InsertBetween(DLink* before, DLink* after) noexcept {
    assert(!linked());
    prev_ = before;
    next_ = after;
    before->next_ = this;
    after->prev_ = this;
  }

  DLink* next_ = nullptr;
  DLink* prev_ = nullptr;
};

// DList<T, &T::link>: a list threaded through T's `link` member.
// The list does not own elements; callers manage element lifetime (elements
// unlink themselves when destroyed).
template <typename T, DLink T::* Member>
class DList {
 public:
  DList() noexcept {
    // Sentinel circle.
    head_.next_ = &head_;
    head_.prev_ = &head_;
  }

  ~DList() { Clear(); }

  DList(const DList&) = delete;
  DList& operator=(const DList&) = delete;

  bool empty() const noexcept { return head_.next_ == &head_; }

  std::size_t size() const noexcept {
    std::size_t n = 0;
    for (const DLink* p = head_.next_; p != &head_; p = p->next_) ++n;
    return n;
  }

  void PushBack(T& item) noexcept {
    LinkOf(item).InsertBetween(head_.prev_, &head_);
  }

  void PushFront(T& item) noexcept {
    LinkOf(item).InsertBetween(&head_, head_.next_);
  }

  T* Front() noexcept {
    return empty() ? nullptr : FromLink(head_.next_);
  }

  T* Back() noexcept {
    return empty() ? nullptr : FromLink(head_.prev_);
  }

  // Pops and returns the front element, or nullptr when empty.
  T* PopFront() noexcept {
    if (empty()) return nullptr;
    T* item = FromLink(head_.next_);
    LinkOf(*item).Unlink();
    return item;
  }

  static void Remove(T& item) noexcept { LinkOf(item).Unlink(); }

  static bool IsLinked(const T& item) noexcept {
    return (item.*Member).linked();
  }

  // Unlinks all elements (does not destroy them).
  void Clear() noexcept {
    while (PopFront() != nullptr) {
    }
  }

  // Minimal forward iteration support (enough for range-for).
  class iterator {
   public:
    using iterator_category = std::forward_iterator_tag;
    using value_type = T;
    using difference_type = std::ptrdiff_t;
    using pointer = T*;
    using reference = T&;

    explicit iterator(DLink* node) noexcept : node_(node) {}
    reference operator*() const noexcept { return *FromLink(node_); }
    pointer operator->() const noexcept { return FromLink(node_); }
    iterator& operator++() noexcept {
      node_ = node_->next_;
      return *this;
    }
    iterator operator++(int) noexcept {
      iterator tmp = *this;
      ++*this;
      return tmp;
    }
    friend bool operator==(const iterator& a, const iterator& b) noexcept {
      return a.node_ == b.node_;
    }

   private:
    DLink* node_;
  };

  iterator begin() noexcept { return iterator(head_.next_); }
  iterator end() noexcept { return iterator(&head_); }

 private:
  static DLink& LinkOf(T& item) noexcept { return item.*Member; }

  static T* FromLink(DLink* link) noexcept {
    // Recover T* from the embedded member address.
    const auto offset = MemberOffset();
    return reinterpret_cast<T*>(reinterpret_cast<char*>(link) - offset);
  }

  static std::ptrdiff_t MemberOffset() noexcept {
    alignas(T) static char storage[sizeof(T)];
    const T* probe = reinterpret_cast<const T*>(storage);
    return reinterpret_cast<const char*>(&(probe->*Member)) -
           reinterpret_cast<const char*>(probe);
  }

  DLink head_;
};

}  // namespace cool
