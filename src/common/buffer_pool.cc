#include "common/buffer_pool.h"

namespace cool {

ByteBuffer BufferPool::Lease(std::size_t reserve) {
  std::vector<std::uint8_t> storage;
  {
    MutexLock lock(mu_);
    if (!free_.empty()) {
      storage = std::move(free_.back());
      free_.pop_back();
      ++hits_;
    } else {
      ++misses_;
    }
  }
  storage.clear();
  if (reserve < options_.initial_reserve) reserve = options_.initial_reserve;
  if (storage.capacity() < reserve) storage.reserve(reserve);
  ByteBuffer buf(std::move(storage));
  buf.pool_ = this;
  return buf;
}

void BufferPool::Recycle(std::vector<std::uint8_t>&& storage) {
  if (storage.capacity() == 0 ||
      storage.capacity() > options_.max_capacity) {
    return;
  }
  storage.clear();
  MutexLock lock(mu_);
  if (free_.size() >= options_.max_buffers) return;
  free_.push_back(std::move(storage));
}

BufferPool::Stats BufferPool::stats() const {
  MutexLock lock(mu_);
  Stats s;
  s.hits = hits_;
  s.misses = misses_;
  s.free_buffers = free_.size();
  return s;
}

BufferPool& BufferPool::Default() {
  // Intentionally leaked: leased buffers in detached threads may be
  // destroyed after static teardown and must still find a live pool.
  static BufferPool* pool = new BufferPool();
  return *pool;
}

}  // namespace cool
