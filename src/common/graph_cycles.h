// Incremental cycle detection over a dynamic directed graph, after the
// Pearce–Kelly algorithm (the same design as absl::Mutex's deadlock
// detector): nodes carry a topological order that is repaired locally on
// edge insertion, so InsertEdge() costs O(affected region) and detects the
// edge that would close a cycle *before* it is recorded.
//
// The deadlock detector (common/deadlock.h) uses one process-wide graph
// whose nodes are cool::Mutex addresses and whose edge a->b means "a was
// held while b was acquired". A cycle in that graph is a lock-order
// inversion — a potential deadlock — even if no execution has interleaved
// the two orders yet. This class is the pure algorithm: single-threaded,
// no locking, no knowledge of mutexes; callers serialize access.
//
// Node ids are versioned handles: RemoveNode() frees the slot for reuse and
// bumps the version, so a stale GraphId held by a caller can never alias a
// later node in the same slot.
#pragma once

#include <cstdint>
#include <memory>

namespace cool {

struct GraphId {
  std::uint64_t handle = 0;

  bool operator==(const GraphId&) const = default;
};

inline constexpr GraphId kInvalidGraphId{0};

class GraphCycles {
 public:
  GraphCycles();
  ~GraphCycles();

  GraphCycles(const GraphCycles&) = delete;
  GraphCycles& operator=(const GraphCycles&) = delete;

  // Returns the node for `ptr`, creating it on first sight. `ptr` is an
  // opaque identity key (the detector passes mutex addresses).
  GraphId GetId(void* ptr);

  // Removes the node keyed by `ptr` (if any) and every edge touching it.
  // Its GraphId becomes stale: later calls with it are no-ops / false.
  void RemoveNode(void* ptr);

  // The identity key `id` was created with; nullptr for stale ids.
  void* Ptr(GraphId id) const;

  // Inserts the edge x -> y. Returns false iff the edge would create a
  // cycle (the edge is NOT inserted in that case) or either id is stale.
  // Self-edges report a cycle. Duplicate edges are fine (idempotent).
  bool InsertEdge(GraphId x, GraphId y);

  void RemoveEdge(GraphId x, GraphId y);

  bool HasEdge(GraphId x, GraphId y) const;

  // After InsertEdge(x, y) returned false: writes the nodes of a path
  // y -> ... -> x (the pre-existing ordering that conflicts with the new
  // edge) into `path`, up to max_len entries. Returns the path length
  // (possibly > max_len if truncated), or 0 if none exists.
  int FindPath(GraphId x, GraphId y, int max_len, GraphId path[]) const;

  // Caller-attached note per node (the detector stores the acquisition
  // stack of the most recent "held while acquiring another lock" event).
  // Returns nullptr for stale ids.
  void SetNodeInfo(GraphId id, void* info);
  void* GetNodeInfo(GraphId id) const;

  std::int64_t num_nodes() const;
  std::int64_t num_edges() const;

  // Self-check for tests: topological ranks consistent with every edge,
  // no duplicate ranks among live nodes.
  bool CheckInvariants() const;

 private:
  struct Rep;
  std::unique_ptr<Rep> rep_;
};

}  // namespace cool
