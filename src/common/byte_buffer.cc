#include "common/byte_buffer.h"

#include "common/buffer_pool.h"

namespace cool {

void ByteBuffer::ReleaseToPool() noexcept {
  if (pool_ == nullptr) return;
  BufferPool* pool = pool_;
  pool_ = nullptr;
  pool->Recycle(std::move(data_));
  data_.clear();
  read_pos_ = 0;
}

std::string ByteBuffer::HexDump(std::size_t max_bytes) const {
  static const char kHex[] = "0123456789abcdef";
  const std::size_t n = std::min(max_bytes, data_.size());
  std::string out;
  out.reserve(n * 3);
  for (std::size_t i = 0; i < n; ++i) {
    if (i != 0) out += (i % 8 == 0) ? "  " : " ";
    out += kHex[data_[i] >> 4];
    out += kHex[data_[i] & 0xf];
  }
  if (n < data_.size()) out += " ...";
  return out;
}

}  // namespace cool
