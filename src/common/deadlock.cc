#include "common/deadlock.h"

#include <cstdio>
#include <cstdlib>
#include <mutex>  // the detector's own lock must not be an instrumented cool::Mutex
#include <sstream>
#include <unordered_map>

#include "common/graph_cycles.h"

#if defined(__has_include)
#if __has_include(<execinfo.h>)
#include <execinfo.h>
#define COOL_HAVE_BACKTRACE 1
#endif
#endif

namespace cool::deadlock {
namespace {

// ---------------------------------------------------------------------------
// Context marker.

thread_local Context tls_context = Context::kNone;
thread_local int tls_blocking_allowed = 0;

const char* ContextName(Context c) {
  switch (c) {
    case Context::kNone: return "none";
    case Context::kReactorCallback: return "reactor callback";
    case Context::kDispatchUpcall: return "dispatch-pool upcall";
  }
  return "?";
}

// ---------------------------------------------------------------------------
// Stack capture.

constexpr int kMaxFrames = 24;

struct Stack {
  void* frames[kMaxFrames];
  int n = 0;
};

void CaptureStack(Stack* s) {
#if COOL_HAVE_BACKTRACE
  s->n = backtrace(s->frames, kMaxFrames);
#else
  s->n = 0;
#endif
}

void AppendStack(std::ostringstream& os, const Stack& s) {
#if COOL_HAVE_BACKTRACE
  if (s.n == 0) {
    os << "    (no frames captured)\n";
    return;
  }
  char** symbols = backtrace_symbols(s.frames, s.n);
  for (int i = 0; i < s.n; ++i) {
    os << "    #" << i << " ";
    if (symbols != nullptr && symbols[i] != nullptr) {
      os << symbols[i];
    } else {
      os << s.frames[i];
    }
    os << "\n";
  }
  std::free(symbols);  // malloc'd by backtrace_symbols; frees strings too
#else
  os << "    (backtrace unavailable on this platform)\n";
#endif
}

// ---------------------------------------------------------------------------
// Held-lock stack (per thread).

struct Held {
  const void* mu = nullptr;
  LockRank rank = LockRank::kUnranked;
  const char* name = nullptr;
  Stack acquire_stack;
};

constexpr int kMaxHeld = 64;

struct HeldStack {
  Held held[kMaxHeld];
  int n = 0;
  int overflowed = 0;  // acquisitions dropped past kMaxHeld
};

thread_local HeldStack tls_held;

// ---------------------------------------------------------------------------
// Global graph + per-lock metadata.

struct LockMeta {
  const char* name = nullptr;
  LockRank rank = LockRank::kUnranked;
  // Stack of the most recent acquisition of this lock made while other
  // locks were held — the "prior ordering" side of a cycle report.
  Stack last_hold_stack;
  bool has_hold_stack = false;
};

struct State {
  std::mutex mu;
  GraphCycles graph;
  std::unordered_map<const void*, LockMeta> meta;
};

State& GetState() {
  static State* s = new State();  // leaked: locks outlive static teardown
  return *s;
}

void DefaultReportHandler(const Report& report) {
  std::fprintf(stderr, "%s", report.message.c_str());
  std::fflush(stderr);
  std::abort();
}

ReportHandler g_handler = &DefaultReportHandler;

void Emit(Report::Kind kind, std::string message) {
  Report report{kind, std::move(message)};
  g_handler(report);
}

const char* NameOr(const char* name, const char* fallback) {
  return name != nullptr ? name : fallback;
}

std::string DescribeLock(const void* mu, LockRank rank, const char* name) {
  std::ostringstream os;
  os << '"' << NameOr(name, "<unnamed>") << "\" (rank " << LockRankName(rank)
     << ", " << mu << ")";
  return os.str();
}

}  // namespace

Context CurrentContext() noexcept { return tls_context; }

ScopedContext::ScopedContext(Context ctx) noexcept : prev_(tls_context) {
  tls_context = ctx;
}
ScopedContext::~ScopedContext() { tls_context = prev_; }

ScopedBlockingAllowed::ScopedBlockingAllowed() noexcept {
  ++tls_blocking_allowed;
}
ScopedBlockingAllowed::~ScopedBlockingAllowed() { --tls_blocking_allowed; }

bool BlockingAllowed() noexcept {
  return tls_context == Context::kNone || tls_blocking_allowed > 0;
}

ReportHandler SetReportHandler(ReportHandler handler) noexcept {
  ReportHandler prev = g_handler;
  g_handler = handler != nullptr ? handler : &DefaultReportHandler;
  return prev;
}

namespace {

void PushHeld(const void* mu, LockRank rank, const char* name,
              const Stack& stack) {
  HeldStack& hs = tls_held;
  if (hs.n >= kMaxHeld) {
    ++hs.overflowed;
    return;
  }
  Held& h = hs.held[hs.n++];
  h.mu = mu;
  h.rank = rank;
  h.name = name;
  h.acquire_stack = stack;
}

// Recursion + rank monotonicity checks against the current held stack.
// Returns false if a report fired (the caller still proceeds: the default
// handler aborts, a test handler wants execution to continue).
void CheckHeldStack(const void* mu, LockRank rank, const char* name,
                    const Stack& stack) {
  HeldStack& hs = tls_held;
  const Held* min_held = nullptr;
  for (int i = 0; i < hs.n; ++i) {
    const Held& h = hs.held[i];
    if (h.mu == mu) {
      std::ostringstream os;
      os << "COOL DEADLOCK DETECTOR: recursive acquisition of "
         << DescribeLock(mu, rank, name) << " — cool::Mutex is not "
         << "recursive; this would deadlock\n  second acquisition:\n";
      AppendStack(os, stack);
      os << "  first acquisition:\n";
      AppendStack(os, h.acquire_stack);
      Emit(Report::Kind::kRecursiveLock, os.str());
      return;
    }
    if (h.rank != LockRank::kUnranked &&
        (min_held == nullptr || h.rank < min_held->rank)) {
      min_held = &h;
    }
  }
  if (rank != LockRank::kUnranked && min_held != nullptr &&
      rank > min_held->rank) {
    std::ostringstream os;
    os << "COOL DEADLOCK DETECTOR: lock-rank violation — acquiring "
       << DescribeLock(mu, rank, name) << "\n  while holding lower-ranked "
       << DescribeLock(min_held->mu, min_held->rank, min_held->name)
       << "\n  (outer locks must carry higher ranks; see "
       << "common/lock_rank.h and scripts/lock_order.yaml)\n"
       << "  this acquisition stack:\n";
    AppendStack(os, stack);
    os << "  stack that acquired the held lock:\n";
    AppendStack(os, min_held->acquire_stack);
    Emit(Report::Kind::kRankViolation, os.str());
  }
}

// Records "held -> mu" edges in the global graph; reports a cycle when an
// edge closes one.
void RecordEdges(const void* mu, LockRank rank, const char* name,
                 const Stack& stack) {
  HeldStack& hs = tls_held;
  if (hs.n == 0) return;
  State& st = GetState();
  std::lock_guard<std::mutex> lock(st.mu);
  LockMeta& my_meta = st.meta[mu];
  my_meta.name = name;
  my_meta.rank = rank;
  const GraphId my_id = st.graph.GetId(const_cast<void*>(
      static_cast<const void*>(mu)));
  for (int i = 0; i < hs.n; ++i) {
    Held& h = hs.held[i];
    const GraphId held_id = st.graph.GetId(const_cast<void*>(h.mu));
    if (held_id == my_id) continue;  // recursive case already reported
    if (st.graph.InsertEdge(held_id, my_id)) {
      // Remember the stack under which this ordering was established: if
      // the reverse order ever shows up, this is the "other side" of the
      // cycle report.
      LockMeta& held_meta = st.meta[h.mu];
      held_meta.name = h.name;
      held_meta.rank = h.rank;
      held_meta.last_hold_stack = stack;
      held_meta.has_hold_stack = true;
      continue;
    }
    // Cycle: a path my_id ->* held_id already exists.
    std::ostringstream os;
    os << "COOL DEADLOCK DETECTOR: lock-order cycle (potential deadlock)\n"
       << "  acquiring " << DescribeLock(mu, rank, name) << "\n"
       << "  while holding " << DescribeLock(h.mu, h.rank, h.name) << "\n";
    GraphId path[16];
    const int len = st.graph.FindPath(held_id, my_id, 16, path);
    if (len > 0) {
      os << "  existing lock-order path: ";
      for (int k = 0; k < len && k < 16; ++k) {
        const void* p = st.graph.Ptr(path[k]);
        const auto it = st.meta.find(p);
        os << '"'
           << NameOr(it != st.meta.end() ? it->second.name : nullptr,
                     "<unnamed>")
           << '"';
        if (k + 1 < len && k + 1 < 16) os << " -> ";
      }
      os << "\n";
    }
    os << "  this acquisition stack (" << NameOr(h.name, "<unnamed>")
       << " held while acquiring " << NameOr(name, "<unnamed>") << "):\n";
    AppendStack(os, stack);
    const auto it = st.meta.find(mu);
    os << "  prior acquisition stack (" << NameOr(name, "<unnamed>")
       << " held while acquiring along the existing path):\n";
    if (it != st.meta.end() && it->second.has_hold_stack) {
      AppendStack(os, it->second.last_hold_stack);
    } else {
      os << "    (not recorded)\n";
    }
    Emit(Report::Kind::kCycle, os.str());
  }
}

}  // namespace

void OnLockAcquire(const void* mu, LockRank rank, const char* name) {
  Stack stack;
  CaptureStack(&stack);
  CheckHeldStack(mu, rank, name, stack);
  RecordEdges(mu, rank, name, stack);
  PushHeld(mu, rank, name, stack);
}

void OnLockTryAcquired(const void* mu, LockRank rank, const char* name) {
  // A try-lock cannot block, so it adds no deadlock edge — but it joins
  // the held stack: blocking acquires made under it record edges from it.
  Stack stack;
  CaptureStack(&stack);
  PushHeld(mu, rank, name, stack);
}

void OnLockRelease(const void* mu) {
  HeldStack& hs = tls_held;
  if (hs.overflowed > 0) {
    // The dropped acquisitions were necessarily more recent than anything
    // on the stack; assume LIFO release and absorb one drop.
    --hs.overflowed;
    return;
  }
  for (int i = hs.n - 1; i >= 0; --i) {
    if (hs.held[i].mu != mu) continue;
    for (int j = i; j + 1 < hs.n; ++j) hs.held[j] = hs.held[j + 1];
    --hs.n;
    return;
  }
  // Not found: the lock predates the detector or was adopted; ignore.
}

void OnLockDestroy(const void* mu) {
  State& st = GetState();
  std::lock_guard<std::mutex> lock(st.mu);
  st.graph.RemoveNode(const_cast<void*>(mu));
  st.meta.erase(mu);
}

void OnCondVarWaitBegin(const void* mu) { OnLockRelease(mu); }

void OnCondVarWaitEnd(const void* mu, LockRank rank, const char* name) {
  OnLockAcquire(mu, rank, name);
}

void AssertBlockingAllowed(const char* what) {
  if (BlockingAllowed()) return;
  Stack stack;
  CaptureStack(&stack);
  std::ostringstream os;
  os << "COOL DEADLOCK DETECTOR: unbounded blocking wait (" << what
     << ") inside a " << ContextName(tls_context)
     << " — run-to-completion workers must never block; drain via Try* "
     << "paths or hand the work to the dispatch pool (DESIGN.md §11)\n"
     << "  blocking stack:\n";
  AppendStack(os, stack);
  Emit(Report::Kind::kBlockingInContext, os.str());
}

int HeldLockCount() noexcept { return tls_held.n; }

}  // namespace cool::deadlock
