// Annotated synchronisation primitives. These wrap the standard library
// types 1:1 but carry Clang -Wthread-safety capability attributes, so a
// Clang build with COOL_THREAD_SAFETY_ANALYSIS=ON statically checks the
// locking discipline (which mutex guards which state, lock ordering on a
// call path, notify-under-lock).
//
// Rules of use (enforced by scripts/check_invariants.py):
//  - raw std::mutex / std::condition_variable / std::shared_mutex only
//    appear in this header (and in the deadlock detector's own guts);
//  - shared state is annotated COOL_GUARDED_BY(mu_);
//  - condition variables are waited on in explicit while-loops in the
//    caller (the analysis cannot see through predicate lambdas) and
//    notified with the mutex held (see BlockingQueue for why);
//  - every named mutex in src/ declares its LockRank (common/lock_rank.h)
//    and appears in scripts/lock_order.yaml.
//
// With COOL_DEADLOCK_DETECTOR=ON every acquire/release additionally feeds
// the runtime lock-order detector (common/deadlock.h): rank monotonicity
// is asserted, "held -> acquiring" edges go into a process-wide cycle
// graph, and unbounded CondVar waits inside reactor/dispatch upcalls are
// reported. Release builds compile all of that away.
#pragma once

#include <condition_variable>
#include <mutex>
#include <shared_mutex>

#include "common/clock.h"
#include "common/deadlock.h"
#include "common/lock_rank.h"
#include "common/thread_annotations.h"

#ifdef COOL_DEADLOCK_DETECTOR
#define COOL_DETECTOR_HOOK(expr) (expr)
#else
#define COOL_DETECTOR_HOOK(expr) ((void)0)
#endif

namespace cool {

class CondVar;

// Exclusive mutex (wraps std::mutex). Named mutexes in src/ construct with
// an explicit rank: `Mutex mu_{LockRank::kEngine, "giop::GiopClient::mu_"}`.
class COOL_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  explicit Mutex(LockRank rank, const char* name = nullptr) noexcept
#ifdef COOL_DEADLOCK_DETECTOR
      : rank_(rank), name_(name) {
  }
#else
  {
    (void)rank;
    (void)name;
  }
#endif

#ifdef COOL_DEADLOCK_DETECTOR
  ~Mutex() { deadlock::OnLockDestroy(this); }
#endif

  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() COOL_ACQUIRE() {
    COOL_DETECTOR_HOOK(deadlock::OnLockAcquire(this, rank(), name()));
    mu_.lock();
  }
  void Unlock() COOL_RELEASE() {
    COOL_DETECTOR_HOOK(deadlock::OnLockRelease(this));
    mu_.unlock();
  }
  bool TryLock() COOL_TRY_ACQUIRE(true) {
    const bool ok = mu_.try_lock();
    if (ok) COOL_DETECTOR_HOOK(deadlock::OnLockTryAcquired(this, rank(), name()));
    return ok;
  }

  // Static-analysis assertion for code paths where the capability is held
  // but the analysis cannot prove it (e.g. via a scoped lock passed in).
  void AssertHeld() const COOL_ASSERT_CAPABILITY(this) {}

  LockRank rank() const noexcept {
#ifdef COOL_DEADLOCK_DETECTOR
    return rank_;
#else
    return LockRank::kUnranked;
#endif
  }
  const char* name() const noexcept {
#ifdef COOL_DEADLOCK_DETECTOR
    return name_;
#else
    return nullptr;
#endif
  }

 private:
  friend class CondVar;
  std::mutex mu_;
#ifdef COOL_DEADLOCK_DETECTOR
  LockRank rank_ = LockRank::kUnranked;
  const char* name_ = nullptr;
#endif
};

// Reader/writer mutex (wraps std::shared_mutex). Shared and exclusive
// acquisitions both feed the detector: ordering matters either way.
class COOL_CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  explicit SharedMutex(LockRank rank, const char* name = nullptr) noexcept
#ifdef COOL_DEADLOCK_DETECTOR
      : rank_(rank), name_(name) {
  }
#else
  {
    (void)rank;
    (void)name;
  }
#endif

#ifdef COOL_DEADLOCK_DETECTOR
  ~SharedMutex() { deadlock::OnLockDestroy(this); }
#endif

  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void Lock() COOL_ACQUIRE() {
    COOL_DETECTOR_HOOK(deadlock::OnLockAcquire(this, rank(), name()));
    mu_.lock();
  }
  void Unlock() COOL_RELEASE() {
    COOL_DETECTOR_HOOK(deadlock::OnLockRelease(this));
    mu_.unlock();
  }
  void LockShared() COOL_ACQUIRE_SHARED() {
    COOL_DETECTOR_HOOK(deadlock::OnLockAcquire(this, rank(), name()));
    mu_.lock_shared();
  }
  void UnlockShared() COOL_RELEASE_SHARED() {
    COOL_DETECTOR_HOOK(deadlock::OnLockRelease(this));
    mu_.unlock_shared();
  }

  void AssertHeld() const COOL_ASSERT_CAPABILITY(this) {}

  LockRank rank() const noexcept {
#ifdef COOL_DEADLOCK_DETECTOR
    return rank_;
#else
    return LockRank::kUnranked;
#endif
  }
  const char* name() const noexcept {
#ifdef COOL_DEADLOCK_DETECTOR
    return name_;
#else
    return nullptr;
#endif
  }

 private:
  std::shared_mutex mu_;
#ifdef COOL_DEADLOCK_DETECTOR
  LockRank rank_ = LockRank::kUnranked;
  const char* name_ = nullptr;
#endif
};

// RAII exclusive lock over Mutex.
class COOL_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) COOL_ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  ~MutexLock() COOL_RELEASE() { mu_.Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

// RAII exclusive (writer) lock over SharedMutex.
class COOL_SCOPED_CAPABILITY WriterMutexLock {
 public:
  explicit WriterMutexLock(SharedMutex& mu) COOL_ACQUIRE(mu) : mu_(mu) {
    mu_.Lock();
  }
  ~WriterMutexLock() COOL_RELEASE() { mu_.Unlock(); }

  WriterMutexLock(const WriterMutexLock&) = delete;
  WriterMutexLock& operator=(const WriterMutexLock&) = delete;

 private:
  SharedMutex& mu_;
};

// RAII shared (reader) lock over SharedMutex.
class COOL_SCOPED_CAPABILITY ReaderMutexLock {
 public:
  explicit ReaderMutexLock(SharedMutex& mu) COOL_ACQUIRE_SHARED(mu)
      : mu_(mu) {
    mu_.LockShared();
  }
  ~ReaderMutexLock() COOL_RELEASE_GENERIC() { mu_.UnlockShared(); }

  ReaderMutexLock(const ReaderMutexLock&) = delete;
  ReaderMutexLock& operator=(const ReaderMutexLock&) = delete;

 private:
  SharedMutex& mu_;
};

// Condition variable bound to cool::Mutex. Waits release and reacquire the
// mutex internally; to the static analysis (and the caller) the capability
// is held across the call, so guarded state may be re-examined right after
// — the idiom is an explicit loop:
//
//   MutexLock lock(mu_);
//   while (!closed_ && items_.empty()) not_empty_.Wait(mu_);
//
// The untimed Wait() is an *unbounded* block: inside a reactor callback or
// dispatch-pool upcall it stalls a shared run-to-completion worker, so the
// deadlock detector reports it there (WaitFor/WaitUntil stay legal; waits
// that are bounded by design wrap in deadlock::ScopedBlockingAllowed).
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void Wait(Mutex& mu) COOL_REQUIRES(mu) {
    COOL_DETECTOR_HOOK(deadlock::AssertBlockingAllowed("CondVar::Wait"));
    COOL_DETECTOR_HOOK(deadlock::OnCondVarWaitBegin(&mu));
    std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
    cv_.wait(lock);
    lock.release();
    COOL_DETECTOR_HOOK(deadlock::OnCondVarWaitEnd(&mu, mu.rank(), mu.name()));
  }

  // Returns false iff the deadline passed (the mutex is reacquired either
  // way). Spurious wakeups return true; callers loop on their predicate.
  bool WaitUntil(Mutex& mu, TimePoint deadline) COOL_REQUIRES(mu) {
    COOL_DETECTOR_HOOK(deadlock::OnCondVarWaitBegin(&mu));
    std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
    const std::cv_status status = cv_.wait_until(lock, deadline);
    lock.release();
    COOL_DETECTOR_HOOK(deadlock::OnCondVarWaitEnd(&mu, mu.rank(), mu.name()));
    return status == std::cv_status::no_timeout;
  }

  bool WaitFor(Mutex& mu, Duration timeout) COOL_REQUIRES(mu) {
    return WaitUntil(mu, DeadlineFor(timeout));
  }

  void NotifyOne() noexcept { cv_.notify_one(); }
  void NotifyAll() noexcept { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace cool
