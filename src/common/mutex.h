// Annotated synchronisation primitives. These wrap the standard library
// types 1:1 but carry Clang -Wthread-safety capability attributes, so a
// Clang build with COOL_THREAD_SAFETY_ANALYSIS=ON statically checks the
// locking discipline (which mutex guards which state, lock ordering on a
// call path, notify-under-lock).
//
// Rules of use (enforced by scripts/check_invariants.py):
//  - raw std::mutex / std::condition_variable / std::shared_mutex only
//    appear in this header;
//  - shared state is annotated COOL_GUARDED_BY(mu_);
//  - condition variables are waited on in explicit while-loops in the
//    caller (the analysis cannot see through predicate lambdas) and
//    notified with the mutex held (see BlockingQueue for why).
#pragma once

#include <condition_variable>
#include <mutex>
#include <shared_mutex>

#include "common/clock.h"
#include "common/thread_annotations.h"

namespace cool {

class CondVar;

// Exclusive mutex (wraps std::mutex).
class COOL_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() COOL_ACQUIRE() { mu_.lock(); }
  void Unlock() COOL_RELEASE() { mu_.unlock(); }
  bool TryLock() COOL_TRY_ACQUIRE(true) { return mu_.try_lock(); }

  // Static-analysis assertion for code paths where the capability is held
  // but the analysis cannot prove it (e.g. via a scoped lock passed in).
  void AssertHeld() const COOL_ASSERT_CAPABILITY(this) {}

 private:
  friend class CondVar;
  std::mutex mu_;
};

// Reader/writer mutex (wraps std::shared_mutex).
class COOL_CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void Lock() COOL_ACQUIRE() { mu_.lock(); }
  void Unlock() COOL_RELEASE() { mu_.unlock(); }
  void LockShared() COOL_ACQUIRE_SHARED() { mu_.lock_shared(); }
  void UnlockShared() COOL_RELEASE_SHARED() { mu_.unlock_shared(); }

  void AssertHeld() const COOL_ASSERT_CAPABILITY(this) {}

 private:
  std::shared_mutex mu_;
};

// RAII exclusive lock over Mutex.
class COOL_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) COOL_ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  ~MutexLock() COOL_RELEASE() { mu_.Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

// RAII exclusive (writer) lock over SharedMutex.
class COOL_SCOPED_CAPABILITY WriterMutexLock {
 public:
  explicit WriterMutexLock(SharedMutex& mu) COOL_ACQUIRE(mu) : mu_(mu) {
    mu_.Lock();
  }
  ~WriterMutexLock() COOL_RELEASE() { mu_.Unlock(); }

  WriterMutexLock(const WriterMutexLock&) = delete;
  WriterMutexLock& operator=(const WriterMutexLock&) = delete;

 private:
  SharedMutex& mu_;
};

// RAII shared (reader) lock over SharedMutex.
class COOL_SCOPED_CAPABILITY ReaderMutexLock {
 public:
  explicit ReaderMutexLock(SharedMutex& mu) COOL_ACQUIRE_SHARED(mu)
      : mu_(mu) {
    mu_.LockShared();
  }
  ~ReaderMutexLock() COOL_RELEASE_GENERIC() { mu_.UnlockShared(); }

  ReaderMutexLock(const ReaderMutexLock&) = delete;
  ReaderMutexLock& operator=(const ReaderMutexLock&) = delete;

 private:
  SharedMutex& mu_;
};

// Condition variable bound to cool::Mutex. Waits release and reacquire the
// mutex internally; to the static analysis (and the caller) the capability
// is held across the call, so guarded state may be re-examined right after
// — the idiom is an explicit loop:
//
//   MutexLock lock(mu_);
//   while (!closed_ && items_.empty()) not_empty_.Wait(mu_);
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void Wait(Mutex& mu) COOL_REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
    cv_.wait(lock);
    lock.release();
  }

  // Returns false iff the deadline passed (the mutex is reacquired either
  // way). Spurious wakeups return true; callers loop on their predicate.
  bool WaitUntil(Mutex& mu, TimePoint deadline) COOL_REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
    const std::cv_status status = cv_.wait_until(lock, deadline);
    lock.release();
    return status == std::cv_status::no_timeout;
  }

  bool WaitFor(Mutex& mu, Duration timeout) COOL_REQUIRES(mu) {
    return WaitUntil(mu, DeadlineFor(timeout));
  }

  void NotifyOne() noexcept { cv_.notify_one(); }
  void NotifyAll() noexcept { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace cool
