// BlockingQueue<T>: bounded multi-producer multi-consumer queue with a
// close() protocol. This is the Da CaPo "message queue" primitive (paper
// Fig. 6): every module owns one for data packets and one for control
// packets, and each module's thread blocks on Pop().
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

#include "common/clock.h"

namespace cool {

template <typename T>
class BlockingQueue {
 public:
  // capacity == 0 means unbounded.
  explicit BlockingQueue(std::size_t capacity = 0) : capacity_(capacity) {}

  BlockingQueue(const BlockingQueue&) = delete;
  BlockingQueue& operator=(const BlockingQueue&) = delete;

  // Blocks while the queue is full. Returns false iff the queue was closed
  // (the item is dropped in that case).
  //
  // NOTE on notification discipline (here and below): condition variables
  // are signalled while the mutex is held. Waking the waiter under the
  // lock costs one extra context switch in the worst case, but makes it
  // safe for a consumer to observe the item and *destroy the queue*
  // before the producer's notify call runs — the producer finishes the
  // notify before releasing the mutex the destructor's user must have
  // synchronized on (found by TSan).
  bool Push(T item) {
    std::unique_lock lock(mu_);
    not_full_.wait(lock, [&] { return closed_ || !Full(); });
    if (closed_) return false;
    items_.push_back(std::move(item));
    not_empty_.notify_one();
    return true;
  }

  // Non-blocking push; returns false if full or closed.
  bool TryPush(T item) {
    std::lock_guard lock(mu_);
    if (closed_ || Full()) return false;
    items_.push_back(std::move(item));
    not_empty_.notify_one();
    return true;
  }

  // Blocks until an item is available or the queue is closed *and drained*.
  // nullopt means "closed, nothing more will ever arrive".
  std::optional<T> Pop() {
    std::unique_lock lock(mu_);
    not_empty_.wait(lock, [&] { return closed_ || !items_.empty(); });
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    not_full_.notify_one();
    return item;
  }

  // Pop with deadline; nullopt on timeout or closed+drained. Use
  // `closed()` to distinguish if required.
  std::optional<T> PopFor(Duration timeout) {
    std::unique_lock lock(mu_);
    if (!not_empty_.wait_for(lock, timeout,
                             [&] { return closed_ || !items_.empty(); })) {
      return std::nullopt;
    }
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    not_full_.notify_one();
    return item;
  }

  std::optional<T> TryPop() {
    std::unique_lock lock(mu_);
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    not_full_.notify_one();
    return item;
  }

  // After Close(): pushes fail, pops drain remaining items then return
  // nullopt. Idempotent.
  void Close() {
    std::lock_guard lock(mu_);
    closed_ = true;
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  bool closed() const {
    std::lock_guard lock(mu_);
    return closed_;
  }

  std::size_t size() const {
    std::lock_guard lock(mu_);
    return items_.size();
  }

  bool empty() const { return size() == 0; }

 private:
  bool Full() const { return capacity_ != 0 && items_.size() >= capacity_; }

  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace cool
