// BlockingQueue<T>: bounded multi-producer multi-consumer queue with a
// close() protocol. This is the Da CaPo "message queue" primitive (paper
// Fig. 6): every module owns one for data packets and one for control
// packets, and each module's thread blocks on Pop().
#pragma once

#include <cstddef>
#include <deque>
#include <optional>
#include <utility>
#include <vector>

#include "common/clock.h"
#include "common/mutex.h"

namespace cool {

template <typename T>
class BlockingQueue {
 public:
  // capacity == 0 means unbounded.
  explicit BlockingQueue(std::size_t capacity = 0) : capacity_(capacity) {}

  BlockingQueue(const BlockingQueue&) = delete;
  BlockingQueue& operator=(const BlockingQueue&) = delete;

  // Blocks while the queue is full. Returns false iff the queue was closed
  // (the item is dropped in that case).
  //
  // NOTE on notification discipline (here and below): condition variables
  // are signalled while the mutex is held. Waking the waiter under the
  // lock costs one extra context switch in the worst case, but makes it
  // safe for a consumer to observe the item and *destroy the queue*
  // before the producer's notify call runs — the producer finishes the
  // notify before releasing the mutex the destructor's user must have
  // synchronized on (found by TSan).
  bool Push(T item) {
    MutexLock lock(mu_);
    while (!closed_ && Full()) {
      // Unbounded block: illegal inside reactor/dispatch upcalls (the
      // CondVar guard would also catch it; this names the primitive).
      COOL_DETECTOR_HOOK(
          deadlock::AssertBlockingAllowed("BlockingQueue::Push"));
      not_full_.Wait(mu_);
    }
    if (closed_) return false;
    items_.push_back(std::move(item));
    not_empty_.NotifyOne();
    return true;
  }

  // Non-blocking push; returns false if full or closed.
  bool TryPush(T item) {
    MutexLock lock(mu_);
    if (closed_ || Full()) return false;
    items_.push_back(std::move(item));
    not_empty_.NotifyOne();
    return true;
  }

  // Batched push: the whole train enters under one lock acquisition,
  // blocking for room as needed. Returns false once the queue closed
  // (remaining items dropped). `items` is emptied either way. Waiting
  // consumers are woken with NotifyAll — the queue is multi-consumer, and
  // a batch may satisfy several waiters (a single NotifyOne would strand
  // the rest until the next push).
  bool PushBatch(std::vector<T>& items) {
    MutexLock lock(mu_);
    bool pushed_any = false;
    for (auto& item : items) {
      while (!closed_ && Full()) {
        COOL_DETECTOR_HOOK(
            deadlock::AssertBlockingAllowed("BlockingQueue::PushBatch"));
        if (pushed_any) not_empty_.NotifyAll();
        not_full_.Wait(mu_);
      }
      if (closed_) {
        items.clear();
        return false;
      }
      items_.push_back(std::move(item));
      pushed_any = true;
    }
    if (pushed_any) not_empty_.NotifyAll();
    items.clear();
    return true;
  }

  // Blocks until an item is available or the queue is closed *and drained*.
  // nullopt means "closed, nothing more will ever arrive".
  std::optional<T> Pop() {
    MutexLock lock(mu_);
    while (!closed_ && items_.empty()) {
      COOL_DETECTOR_HOOK(
          deadlock::AssertBlockingAllowed("BlockingQueue::Pop"));
      not_empty_.Wait(mu_);
    }
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    not_full_.NotifyOne();
    return item;
  }

  // Pop with deadline; nullopt on timeout or closed+drained. Use
  // `closed()` to distinguish if required.
  std::optional<T> PopFor(Duration timeout) {
    const TimePoint deadline = DeadlineFor(timeout);
    MutexLock lock(mu_);
    while (!closed_ && items_.empty()) {
      if (!not_empty_.WaitUntil(mu_, deadline)) break;  // timed out
    }
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    not_full_.NotifyOne();
    return item;
  }

  std::optional<T> TryPop() {
    MutexLock lock(mu_);
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    not_full_.NotifyOne();
    return item;
  }

  // After Close(): pushes fail, pops drain remaining items then return
  // nullopt. Idempotent.
  void Close() {
    MutexLock lock(mu_);
    closed_ = true;
    not_empty_.NotifyAll();
    not_full_.NotifyAll();
  }

  bool closed() const {
    MutexLock lock(mu_);
    return closed_;
  }

  std::size_t size() const {
    MutexLock lock(mu_);
    return items_.size();
  }

  bool empty() const { return size() == 0; }

 private:
  bool Full() const COOL_REQUIRES(mu_) {
    return capacity_ != 0 && items_.size() >= capacity_;
  }

  const std::size_t capacity_;
  mutable Mutex mu_{LockRank::kLeaf, "BlockingQueue::mu_"};
  CondVar not_empty_;
  CondVar not_full_;
  std::deque<T> items_ COOL_GUARDED_BY(mu_);
  bool closed_ COOL_GUARDED_BY(mu_) = false;
};

}  // namespace cool
