// Central chokepoint for thread creation. All threads in the system are
// cool::Thread (std::jthread: joins on destruction, carries a stop token);
// scripts/check_invariants.py rejects raw std::thread / std::jthread
// outside src/common/ so thread spawning stays auditable.
#pragma once

#include <thread>

namespace cool {

using Thread = std::jthread;

// The only sanctioned spelling of std::thread::hardware_concurrency (the
// raw std::thread token is rejected outside src/common/). Never returns 0:
// an unknown topology reads as one core.
inline unsigned HardwareConcurrency() noexcept {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1u : n;
}

// Sanctioned thread-identity spelling for the same reason (the reactor uses
// it to detect self-removal from inside a callback).
using ThreadId = std::thread::id;

inline ThreadId ThisThreadId() noexcept { return std::this_thread::get_id(); }

}  // namespace cool
