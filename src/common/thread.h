// Central chokepoint for thread creation. All threads in the system are
// cool::Thread (std::jthread: joins on destruction, carries a stop token);
// scripts/check_invariants.py rejects raw std::thread / std::jthread
// outside src/common/ so thread spawning stays auditable.
#pragma once

#include <thread>

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

namespace cool {

using Thread = std::jthread;

// The only sanctioned spelling of std::thread::hardware_concurrency (the
// raw std::thread token is rejected outside src/common/). Never returns 0:
// an unknown topology reads as one core.
inline unsigned HardwareConcurrency() noexcept {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1u : n;
}

// Sanctioned thread-identity spelling for the same reason (the reactor uses
// it to detect self-removal from inside a callback).
using ThreadId = std::thread::id;

inline ThreadId ThisThreadId() noexcept { return std::this_thread::get_id(); }

// Best-effort BESS-style core pinning: binds the calling thread to CPU
// `core % HardwareConcurrency()`. Returns false when the platform refuses
// (restricted cpuset, non-Linux) — callers treat pinning as a performance
// hint, never a correctness requirement.
inline bool PinThisThreadToCore(unsigned core) noexcept {
#if defined(__linux__)
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(core % HardwareConcurrency(), &set);
  return pthread_setaffinity_np(pthread_self(), sizeof set, &set) == 0;
#else
  (void)core;
  return false;
#endif
}

}  // namespace cool
