// Central chokepoint for thread creation. All threads in the system are
// cool::Thread (std::jthread: joins on destruction, carries a stop token);
// scripts/check_invariants.py rejects raw std::thread / std::jthread
// outside src/common/ so thread spawning stays auditable.
#pragma once

#include <thread>

namespace cool {

using Thread = std::jthread;

}  // namespace cool
