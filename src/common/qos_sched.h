// Hierarchical QoS scheduler: a traffic-class tree in the BESS/Linux-qdisc
// mold, shared by the GIOP dispatch pool (jobs) and the Da CaPo egress
// path (packet trains).
//
//   * Inner nodes arbitrate among their children by weighted fair queueing
//     (stride scheduling over a virtual-time "pass" per child) and/or a
//     token-bucket rate limit per node.
//   * Leaf classes hold per-binding FIFO flows served by deficit round
//     robin among siblings, so one binding's burst cannot reorder or
//     starve its neighbours inside a class.
//   * Each flow runs CoDel-style AQM (Nichols & Jacobson): when the head
//     sojourn stays above `target` for a full `interval`, the flow enters
//     a drop state shedding its own load at an increasing rate until the
//     standing queue collapses — a flooding tenant pays with its own p99,
//     not everyone else's.
//
// Every item carries its enqueue timestamp; per-class sojourn lands in a
// shared Histogram so percentiles come out of the same representation the
// benchmarks use.
//
// The tree is a passive data structure driven by explicit `now` values:
// not internally synchronized (wrap it in the owner's mutex — see
// giop::DispatchPool, transport::EgressScheduler) and fully deterministic
// under a synthetic clock, which is how the unit tests pin down DRR
// quantum accounting, WFQ ratios and CoDel entry/exit.
#pragma once

#include <cstdint>
#include <deque>
#include <limits>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/clock.h"
#include "common/histogram.h"

namespace cool::sched {

// --- token bucket ------------------------------------------------------------

// Byte-rate shaper. rate == 0 means unshaped. The bucket may go one item
// negative (an item is never split), which delays the next grant — the
// long-run rate still converges on `rate_bytes_per_sec`.
class TokenBucket {
 public:
  TokenBucket() = default;

  void Configure(std::uint64_t rate_bytes_per_sec, std::uint64_t burst_bytes,
                 TimePoint now) {
    rate_ = rate_bytes_per_sec;
    burst_ = burst_bytes == 0 ? 1 : burst_bytes;
    tokens_ = static_cast<std::int64_t>(burst_);
    last_ = now;
  }

  bool unlimited() const { return rate_ == 0; }

  void Refill(TimePoint now) {
    if (rate_ == 0 || now <= last_) return;
    const auto dt_ns =
        std::chrono::duration_cast<std::chrono::nanoseconds>(now - last_)
            .count();
    last_ = now;
    const auto earned = static_cast<std::int64_t>(
        static_cast<unsigned __int128>(rate_) *
        static_cast<unsigned __int128>(dt_ns) / 1'000'000'000u);
    tokens_ = std::min<std::int64_t>(tokens_ + earned,
                                     static_cast<std::int64_t>(burst_));
  }

  bool Ready() const { return rate_ == 0 || tokens_ >= 0; }

  void Charge(std::uint64_t bytes) {
    if (rate_ != 0) tokens_ -= static_cast<std::int64_t>(bytes);
  }

  // Earliest instant Ready() can become true again (== now when it already
  // is). Only meaningful for shaped buckets.
  TimePoint ReadyAt(TimePoint now) const {
    if (Ready()) return now;
    const auto deficit = static_cast<std::uint64_t>(-tokens_);
    const auto wait_ns = static_cast<std::int64_t>(
        (static_cast<unsigned __int128>(deficit) * 1'000'000'000u +
         rate_ - 1) /
        rate_);
    return now + std::chrono::nanoseconds(wait_ns);
  }

 private:
  std::uint64_t rate_ = 0;
  std::uint64_t burst_ = 1;
  std::int64_t tokens_ = 0;
  TimePoint last_{};
};

// --- CoDel -------------------------------------------------------------------

struct CodelParams {
  bool enabled = false;
  Duration target = milliseconds(5);      // acceptable standing sojourn
  Duration interval = milliseconds(100);  // worst-case RTT analogue
};

// The controlled-delay drop-state machine, fed with the sojourn of the
// item about to leave its queue. Returns true when AQM says shed it.
class CodelState {
 public:
  bool OnDequeue(Duration sojourn, TimePoint now, const CodelParams& p,
                 bool queue_nearly_empty) {
    if (!p.enabled) return false;
    bool ok_to_drop = false;
    if (sojourn < p.target || queue_nearly_empty) {
      first_above_ = TimePoint{};  // sojourn dipped: restart the clock
    } else {
      if (first_above_ == TimePoint{}) {
        first_above_ = now + p.interval;
      } else if (now >= first_above_) {
        ok_to_drop = true;
      }
    }

    if (dropping_) {
      if (!ok_to_drop) {
        dropping_ = false;
        return false;
      }
      if (now >= drop_next_) {
        ++count_;
        drop_next_ = ControlLaw(drop_next_, p.interval);
        return true;
      }
      return false;
    }
    if (!ok_to_drop) return false;
    // Enter the drop state. If we were dropping recently, resume near the
    // previous drop rate instead of relearning it from 1 (the control-law
    // memory that makes CoDel converge).
    dropping_ = true;
    const std::uint32_t delta = count_ - last_count_;
    count_ = (delta > 1 && now - drop_next_ < 16 * p.interval) ? delta : 1;
    drop_next_ = ControlLaw(now, p.interval);
    last_count_ = count_;
    return true;
  }

  bool dropping() const { return dropping_; }

 private:
  static Duration IsqrtScaled(Duration interval, std::uint32_t count) {
    // interval / sqrt(count) in integer arithmetic: Newton's method on the
    // count is overkill; a float sqrt is fine here (control path only).
    double scale = 1.0;
    if (count > 1) {
      double x = static_cast<double>(count);
      double r = x;
      for (int i = 0; i < 32 && r * r > x * 1.0000001; ++i) {
        r = 0.5 * (r + x / r);
      }
      scale = r;
    }
    const auto ns =
        std::chrono::duration_cast<std::chrono::nanoseconds>(interval).count();
    return std::chrono::duration_cast<Duration>(std::chrono::nanoseconds(
        static_cast<std::int64_t>(static_cast<double>(ns) / scale)));
  }

  TimePoint ControlLaw(TimePoint base, Duration interval) const {
    return base + IsqrtScaled(interval, count_);
  }

  TimePoint first_above_{};
  TimePoint drop_next_{};
  std::uint32_t count_ = 0;
  std::uint32_t last_count_ = 0;
  bool dropping_ = false;
};

// --- tree --------------------------------------------------------------------

struct ClassOptions {
  std::string name;
  // WFQ weight against siblings (>= 1). Ties in virtual time resolve by
  // creation order, so the first-created sibling wins simultaneous
  // activations — create classes highest-priority first.
  std::uint32_t weight = 1;
  // Token-bucket shape for the whole class subtree; 0 = unshaped.
  std::uint64_t rate_bytes_per_sec = 0;
  std::uint64_t burst_bytes = 64 * 1024;
  // DRR quantum granted per flow per round (scaled by the flow weight).
  std::uint32_t quantum_bytes = 4096;
  CodelParams codel;
};

struct FlowProfile {
  std::uint32_t weight = 1;              // scales the DRR quantum
  std::uint64_t rate_bytes_per_sec = 0;  // per-flow shaper, 0 = unshaped
  std::uint64_t burst_bytes = 64 * 1024;
};

struct FlowSnapshot {
  std::uint64_t id = 0;
  std::uint64_t enqueued = 0;
  std::uint64_t dequeued = 0;
  std::uint64_t dropped = 0;
  std::size_t queued = 0;
};

struct ClassSnapshot {
  std::uint32_t id = 0;
  std::string name;
  std::uint64_t enqueued = 0;
  std::uint64_t dequeued = 0;
  std::uint64_t dropped = 0;
  std::uint64_t bytes_dequeued = 0;
  std::size_t queued = 0;
  std::uint64_t sojourn_p50_us = 0;
  std::uint64_t sojourn_p99_us = 0;
  std::uint64_t sojourn_p999_us = 0;
  std::uint64_t sojourn_max_us = 0;
  std::vector<FlowSnapshot> flows;
};

template <typename T>
class TrafficClassTree {
 public:
  using ClassId = std::uint32_t;
  static constexpr ClassId kRoot = 0;

  struct Served {
    T value;
    ClassId cls = kRoot;
    std::uint64_t flow = 0;
    std::size_t bytes = 0;
    Duration sojourn{};
  };

  explicit TrafficClassTree(ClassOptions root = {}) {
    nodes_.push_back(std::make_unique<Node>());
    nodes_[kRoot]->opts = std::move(root);
    SanitizeOptions(nodes_[kRoot]->opts);
    nodes_[kRoot]->bucket.Configure(nodes_[kRoot]->opts.rate_bytes_per_sec,
                                    nodes_[kRoot]->opts.burst_bytes,
                                    TimePoint{});
  }

  // Adds a traffic class under `parent`. The parent must not already hold
  // flows (a node arbitrates either classes or flows, never both).
  ClassId AddClass(ClassId parent, ClassOptions opts) {
    Node& p = *nodes_[parent];
    const auto id = static_cast<ClassId>(nodes_.size());
    nodes_.push_back(std::make_unique<Node>());
    Node& n = *nodes_[id];
    n.opts = std::move(opts);
    SanitizeOptions(n.opts);
    n.parent = parent;
    n.bucket.Configure(n.opts.rate_bytes_per_sec, n.opts.burst_bytes,
                       TimePoint{});
    p.children.push_back(id);
    return id;
  }

  // Live reconfiguration: weight applies at the next arbitration, the
  // bucket restarts full at `now`, CoDel/quantum apply to the next
  // dequeue. Queued items stay queued.
  void SetClassOptions(ClassId cls, ClassOptions opts, TimePoint now) {
    Node& n = *nodes_[cls];
    SanitizeOptions(opts);
    n.opts = std::move(opts);
    n.bucket.Configure(n.opts.rate_bytes_per_sec, n.opts.burst_bytes, now);
    for (auto& [id, flow] : n.flows) {
      (void)id;
      flow.codel = CodelState{};  // parameters changed: restart the AQM
    }
  }

  const ClassOptions& class_options(ClassId cls) const {
    return nodes_[cls]->opts;
  }

  void SetFlowProfile(ClassId cls, std::uint64_t flow_id,
                      const FlowProfile& profile, TimePoint now) {
    Flow& f = nodes_[cls]->flows[flow_id];
    f.weight = profile.weight == 0 ? 1 : profile.weight;
    f.bucket.Configure(profile.rate_bytes_per_sec, profile.burst_bytes, now);
  }

  // Appends to `cls` (a leaf class) under flow `flow_id`, creating the
  // flow from `profile` on first sight. `bytes` is the scheduling cost.
  void Enqueue(ClassId cls, std::uint64_t flow_id, const FlowProfile& profile,
               T value, std::size_t bytes, TimePoint now) {
    Node& n = *nodes_[cls];
    auto [it, inserted] = n.flows.try_emplace(flow_id);
    Flow& f = it->second;
    if (inserted) {
      f.weight = profile.weight == 0 ? 1 : profile.weight;
      f.bucket.Configure(profile.rate_bytes_per_sec, profile.burst_bytes, now);
    }
    f.q.push_back(Item{std::move(value), bytes, now});
    ++f.enqueued;
    ++n.stats_enqueued;
    if (!f.in_ring) {
      n.ring.push_back(flow_id);
      f.in_ring = true;
      f.fresh = true;
      f.deficit = 0;
    }
    // Activate the path: a subtree going 0 -> 1 joins the WFQ race at its
    // parent's current virtual time (no credit for having been idle).
    ClassId id = cls;
    for (;;) {
      Node& node = *nodes_[id];
      if (node.subtree_items == 0 && id != kRoot) {
        node.pass = std::max(node.pass, nodes_[node.parent]->vtime);
      }
      ++node.subtree_items;
      if (id == kRoot) break;
      id = node.parent;
    }
  }

  // Serves the next eligible item. CoDel-shed items (decided at dequeue,
  // per flow) are appended to `dropped` with their values moved out.
  // nullopt when the tree is empty or everything queued is throttled
  // (`NextReadyTime` then says when to retry). `drain` bypasses shaping
  // and AQM — the shutdown path empties the tree unconditionally.
  std::optional<Served> Dequeue(TimePoint now, std::vector<Served>* dropped,
                                bool drain = false) {
    if (nodes_[kRoot]->subtree_items == 0) return std::nullopt;
    // Descend: at each inner node pick the eligible child with the least
    // virtual time (tie -> creation order).
    ClassId id = kRoot;
    if (!Eligible(kRoot, now, drain)) return std::nullopt;
    path_.clear();
    path_.push_back(kRoot);
    while (!nodes_[id]->children.empty()) {
      ClassId best = kInvalid;
      std::uint64_t best_pass = std::numeric_limits<std::uint64_t>::max();
      for (ClassId c : nodes_[id]->children) {
        if (!Eligible(c, now, drain)) continue;
        if (nodes_[c]->pass < best_pass) {
          best_pass = nodes_[c]->pass;
          best = c;
        }
      }
      if (best == kInvalid) return std::nullopt;  // all children throttled
      nodes_[id]->vtime = best_pass;
      id = best;
      path_.push_back(id);
    }
    return ServeLeaf(id, now, dropped, drain);
  }

  // Earliest instant a currently-throttled item could become eligible;
  // nullopt when nothing queued is gated on a token bucket (either the
  // tree is empty or Dequeue would have served something).
  std::optional<TimePoint> NextReadyTime(TimePoint now) const {
    std::optional<TimePoint> earliest;
    auto consider = [&earliest](TimePoint t) {
      if (!earliest || t < *earliest) earliest = t;
    };
    for (const auto& node : nodes_) {
      if (node->subtree_items == 0) continue;
      if (!node->bucket.Ready()) consider(node->bucket.ReadyAt(now));
      for (const auto& [id, flow] : node->flows) {
        (void)id;
        if (!flow.q.empty() && !flow.bucket.Ready()) {
          consider(flow.bucket.ReadyAt(now));
        }
      }
    }
    return earliest;
  }

  // Removes every queued item for which pred(cls, flow_id, value) is true;
  // returns how many went. Removed items are neither served nor counted as
  // AQM drops (this is the cancel/teardown path).
  template <typename Pred>
  std::size_t RemoveIf(Pred&& pred) {
    std::size_t removed = 0;
    for (ClassId id = 0; id < nodes_.size(); ++id) {
      Node& n = *nodes_[id];
      for (auto& [flow_id, flow] : n.flows) {
        for (auto it = flow.q.begin(); it != flow.q.end();) {
          if (pred(id, flow_id, it->value)) {
            it = flow.q.erase(it);
            DeactivateOne(id);
            ++removed;
          } else {
            ++it;
          }
        }
      }
    }
    return removed;
  }

  // Forgets an idle flow's state (ring slot, bucket, counters). A flow
  // with queued items is left alone (RemoveIf them first).
  void RemoveFlow(ClassId cls, std::uint64_t flow_id) {
    Node& n = *nodes_[cls];
    auto it = n.flows.find(flow_id);
    if (it == n.flows.end() || !it->second.q.empty()) return;
    for (auto r = n.ring.begin(); r != n.ring.end(); ++r) {
      if (*r == flow_id) {
        n.ring.erase(r);
        break;
      }
    }
    n.flows.erase(it);
  }

  std::size_t queued() const { return nodes_[kRoot]->subtree_items; }
  std::size_t queued(ClassId cls) const { return nodes_[cls]->subtree_items; }
  bool empty() const { return queued() == 0; }

  const Histogram& sojourn_histogram(ClassId cls) const {
    return nodes_[cls]->sojourn_us;
  }

  std::vector<ClassSnapshot> Snapshot() const {
    std::vector<ClassSnapshot> out;
    for (ClassId id = 0; id < nodes_.size(); ++id) {
      const Node& n = *nodes_[id];
      ClassSnapshot s;
      s.id = id;
      s.name = n.opts.name;
      s.enqueued = n.stats_enqueued;
      s.dequeued = n.stats_dequeued;
      s.dropped = n.stats_dropped;
      s.bytes_dequeued = n.stats_bytes;
      s.queued = n.subtree_items;
      s.sojourn_p50_us = n.sojourn_us.Percentile(50);
      s.sojourn_p99_us = n.sojourn_us.Percentile(99);
      s.sojourn_p999_us = n.sojourn_us.Percentile(99.9);
      s.sojourn_max_us = n.sojourn_us.max();
      for (const auto& [flow_id, flow] : n.flows) {
        FlowSnapshot fs;
        fs.id = flow_id;
        fs.enqueued = flow.enqueued;
        fs.dequeued = flow.dequeued;
        fs.dropped = flow.dropped;
        fs.queued = flow.q.size();
        s.flows.push_back(fs);
      }
      out.push_back(std::move(s));
    }
    return out;
  }

 private:
  static constexpr ClassId kInvalid = std::numeric_limits<ClassId>::max();
  // Virtual-time scale: pass advances by bytes * kPassScale / weight, so
  // weight ratios up to kPassScale resolve without truncating to zero.
  static constexpr std::uint64_t kPassScale = 256;

  struct Item {
    T value;
    std::size_t bytes = 0;
    TimePoint enqueued_at{};
  };

  struct Flow {
    std::deque<Item> q;
    std::uint32_t weight = 1;
    std::int64_t deficit = 0;
    bool in_ring = false;
    bool fresh = true;  // next head-of-ring visit grants a quantum
    TokenBucket bucket;
    CodelState codel;
    std::uint64_t enqueued = 0;
    std::uint64_t dequeued = 0;
    std::uint64_t dropped = 0;
  };

  struct Node {
    ClassOptions opts;
    ClassId parent = kRoot;
    std::vector<ClassId> children;
    // WFQ state: this node's pass (as a child) and the virtual time of the
    // last arbitration (as a parent).
    std::uint64_t pass = 0;
    std::uint64_t vtime = 0;
    TokenBucket bucket;
    std::size_t subtree_items = 0;
    // DRR across this node's flows (leaf classes only).
    std::unordered_map<std::uint64_t, Flow> flows;
    std::deque<std::uint64_t> ring;
    // Class-level stats (leaf classes accumulate; inner nodes stay zero).
    std::uint64_t stats_enqueued = 0;
    std::uint64_t stats_dequeued = 0;
    std::uint64_t stats_dropped = 0;
    std::uint64_t stats_bytes = 0;
    Histogram sojourn_us;
  };

  static void SanitizeOptions(ClassOptions& opts) {
    if (opts.weight == 0) opts.weight = 1;
    if (opts.quantum_bytes == 0) opts.quantum_bytes = 1;
  }

  // A node can produce an item right now: something queued beneath it, its
  // own bucket ready, and (recursively) a servable child or flow.
  bool Eligible(ClassId id, TimePoint now, bool drain) {
    Node& n = *nodes_[id];
    if (n.subtree_items == 0) return false;
    if (!drain) {
      n.bucket.Refill(now);
      if (!n.bucket.Ready()) return false;
    }
    if (n.children.empty()) {
      for (std::uint64_t flow_id : n.ring) {
        Flow& f = n.flows[flow_id];
        if (f.q.empty()) continue;
        if (drain) return true;
        f.bucket.Refill(now);
        if (f.bucket.Ready()) return true;
      }
      return false;
    }
    for (ClassId c : n.children) {
      if (Eligible(c, now, drain)) return true;
    }
    return false;
  }

  // Classic DRR over the leaf's active ring. The caller established (via
  // Eligible) that some flow is servable, so the loop terminates: every
  // pass either serves, drops, retires an empty flow, or rotates while
  // granting quanta — and deficits grow monotonically until a head fits.
  std::optional<Served> ServeLeaf(ClassId id, TimePoint now,
                                  std::vector<Served>* dropped, bool drain) {
    Node& n = *nodes_[id];
    // Generous hard bound against a pathological quantum/size ratio.
    std::size_t steps = 64 * (n.ring.size() + 1) + 4096;
    while (steps-- > 0 && !n.ring.empty()) {
      const std::uint64_t flow_id = n.ring.front();
      Flow& f = n.flows[flow_id];
      if (f.q.empty()) {
        n.ring.pop_front();
        f.in_ring = false;
        f.deficit = 0;
        f.fresh = true;
        continue;
      }
      if (!drain) {
        f.bucket.Refill(now);
        if (!f.bucket.Ready()) {  // shaped flow waiting on tokens
          n.ring.pop_front();
          n.ring.push_back(flow_id);
          continue;
        }
      }
      // AQM before the deficit check: shedding a stale queue must not wait
      // on scheduler credit.
      bool dropped_any = false;
      while (!f.q.empty()) {
        Item& head = f.q.front();
        const Duration sojourn =
            now > head.enqueued_at ? now - head.enqueued_at : Duration{};
        if (!drain && f.codel.OnDequeue(sojourn, now, n.opts.codel,
                                        f.q.size() <= 1)) {
          if (dropped != nullptr) {
            Served d;
            d.value = std::move(head.value);
            d.cls = id;
            d.flow = flow_id;
            d.bytes = head.bytes;
            d.sojourn = sojourn;
            dropped->push_back(std::move(d));
          }
          f.q.pop_front();
          ++f.dropped;
          ++n.stats_dropped;
          DeactivateOne(id);
          dropped_any = true;
          continue;
        }
        break;
      }
      if (f.q.empty()) continue;  // everything shed: retire on next visit
      (void)dropped_any;
      if (f.fresh) {
        f.deficit += static_cast<std::int64_t>(n.opts.quantum_bytes) *
                     static_cast<std::int64_t>(f.weight);
        f.fresh = false;
      }
      Item& head = f.q.front();
      if (static_cast<std::int64_t>(head.bytes) <= f.deficit) {
        Served out;
        out.value = std::move(head.value);
        out.cls = id;
        out.flow = flow_id;
        out.bytes = head.bytes;
        out.sojourn =
            now > head.enqueued_at ? now - head.enqueued_at : Duration{};
        f.deficit -= static_cast<std::int64_t>(out.bytes);
        f.bucket.Charge(out.bytes);
        f.q.pop_front();  // invalidates `head`
        ++f.dequeued;
        ++n.stats_dequeued;
        n.stats_bytes += out.bytes;
        n.sojourn_us.Add(static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::microseconds>(out.sojourn)
                .count()));
        if (f.q.empty()) {
          n.ring.pop_front();
          f.in_ring = false;
          f.deficit = 0;
          f.fresh = true;
        }
        // Charge the path: WFQ passes for every selected child, bucket
        // tokens for every node the item flowed through.
        for (std::size_t i = 0; i < path_.size(); ++i) {
          Node& pn = *nodes_[path_[i]];
          pn.bucket.Charge(out.bytes);
          if (path_[i] != kRoot) {
            pn.pass += out.bytes * kPassScale / pn.opts.weight;
          }
        }
        DeactivateOne(id);
        return out;
      }
      // Head exceeds the deficit: next round, next quantum.
      n.ring.pop_front();
      n.ring.push_back(flow_id);
      f.fresh = true;
    }
    return std::nullopt;
  }

  // One item left the subtree rooted at each ancestor of `cls`.
  void DeactivateOne(ClassId cls) {
    ClassId id = cls;
    for (;;) {
      Node& node = *nodes_[id];
      if (node.subtree_items > 0) --node.subtree_items;
      if (id == kRoot) break;
      id = node.parent;
    }
  }

  std::vector<std::unique_ptr<Node>> nodes_;
  std::vector<ClassId> path_;  // scratch for Dequeue (no per-call alloc)
};

}  // namespace cool::sched
