#include "common/status.h"

namespace cool {

std::string_view ErrorCodeName(ErrorCode code) noexcept {
  switch (code) {
    case ErrorCode::kOk: return "OK";
    case ErrorCode::kInvalidArgument: return "INVALID_ARGUMENT";
    case ErrorCode::kFailedPrecondition: return "FAILED_PRECONDITION";
    case ErrorCode::kNotFound: return "NOT_FOUND";
    case ErrorCode::kAlreadyExists: return "ALREADY_EXISTS";
    case ErrorCode::kResourceExhausted: return "RESOURCE_EXHAUSTED";
    case ErrorCode::kUnavailable: return "UNAVAILABLE";
    case ErrorCode::kDeadlineExceeded: return "DEADLINE_EXCEEDED";
    case ErrorCode::kCancelled: return "CANCELLED";
    case ErrorCode::kProtocolError: return "PROTOCOL_ERROR";
    case ErrorCode::kUnsupported: return "UNSUPPORTED";
    case ErrorCode::kInternal: return "INTERNAL";
  }
  return "UNKNOWN";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(ErrorCodeName(code_));
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace cool
