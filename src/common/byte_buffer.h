// ByteBuffer: a growable octet buffer with independent read/write cursors.
// The single backing store used by CDR marshaling, GIOP framing, transport
// buffering (_TcpBuffer analogue) and Da CaPo packet payloads.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <vector>

#include "common/status.h"

namespace cool {

class BufferPool;

class ByteBuffer {
 public:
  ByteBuffer() = default;
  explicit ByteBuffer(std::vector<std::uint8_t> data)
      : data_(std::move(data)) {}
  explicit ByteBuffer(std::span<const std::uint8_t> data)
      : data_(data.begin(), data.end()) {}

  // Pool-aware lifetime (see common/buffer_pool.h): a buffer leased from a
  // BufferPool returns its storage to the pool when destroyed or
  // move-assigned over. Copies are unpooled; moves carry the pool homing;
  // copy-assignment keeps the destination's homing (and reuses its
  // capacity), so `*leased = other` stays allocation-free when it fits.
  // The pool_ check stays inline: unpooled buffers (the overwhelmingly
  // common temporaries) must not pay an out-of-line call to destroy.
  ~ByteBuffer() {
    if (pool_ != nullptr) ReleaseToPool();
  }

  ByteBuffer(const ByteBuffer& other)
      : data_(other.data_), read_pos_(other.read_pos_) {}

  ByteBuffer& operator=(const ByteBuffer& other) {
    if (this != &other) {
      data_ = other.data_;
      read_pos_ = other.read_pos_;
    }
    return *this;
  }

  ByteBuffer(ByteBuffer&& other) noexcept
      : data_(std::move(other.data_)),
        read_pos_(other.read_pos_),
        pool_(other.pool_) {
    other.data_.clear();
    other.read_pos_ = 0;
    other.pool_ = nullptr;
  }

  ByteBuffer& operator=(ByteBuffer&& other) noexcept {
    if (this != &other) {
      if (pool_ != nullptr) ReleaseToPool();
      data_ = std::move(other.data_);
      read_pos_ = other.read_pos_;
      pool_ = other.pool_;
      other.data_.clear();
      other.read_pos_ = 0;
      other.pool_ = nullptr;
    }
    return *this;
  }

  static ByteBuffer FromString(std::string_view s) {
    ByteBuffer b;
    b.Append(std::span<const std::uint8_t>(
        reinterpret_cast<const std::uint8_t*>(s.data()), s.size()));
    return b;
  }

  // --- writer side -------------------------------------------------------
  void Append(std::span<const std::uint8_t> bytes) {
    data_.insert(data_.end(), bytes.begin(), bytes.end());
  }
  void AppendByte(std::uint8_t b) { data_.push_back(b); }
  // Appends `count` zero octets (used for CDR alignment padding).
  void AppendZeros(std::size_t count) { data_.insert(data_.end(), count, 0); }

  // Write at an absolute offset (used to back-patch GIOP message_size).
  // Subtraction form: `offset + bytes.size()` could wrap size_t and slip
  // past an additive bounds test.
  Status WriteAt(std::size_t offset, std::span<const std::uint8_t> bytes) {
    if (offset > data_.size() || bytes.size() > data_.size() - offset) {
      return InvalidArgumentError("WriteAt out of range");
    }
    std::memcpy(data_.data() + offset, bytes.data(), bytes.size());
    return Status::Ok();
  }

  // --- reader side --------------------------------------------------------
  std::size_t read_pos() const noexcept { return read_pos_; }
  void set_read_pos(std::size_t pos) noexcept { read_pos_ = pos; }
  std::size_t remaining() const noexcept { return data_.size() - read_pos_; }

  // Copies `out.size()` octets from the cursor; fails without consuming if
  // fewer remain.
  Status Read(std::span<std::uint8_t> out) {
    if (out.size() > remaining()) {
      return ProtocolError("buffer underrun");
    }
    std::memcpy(out.data(), data_.data() + read_pos_, out.size());
    read_pos_ += out.size();
    return Status::Ok();
  }

  Status Skip(std::size_t count) {
    if (count > remaining()) return ProtocolError("skip past end");
    read_pos_ += count;
    return Status::Ok();
  }

  // --- whole-buffer access -------------------------------------------------
  std::size_t size() const noexcept { return data_.size(); }
  bool empty() const noexcept { return data_.empty(); }
  const std::uint8_t* data() const noexcept { return data_.data(); }
  std::uint8_t* data() noexcept { return data_.data(); }
  std::span<const std::uint8_t> view() const noexcept {
    return {data_.data(), data_.size()};
  }
  std::span<const std::uint8_t> unread() const noexcept {
    return {data_.data() + read_pos_, remaining()};
  }
  void Clear() noexcept {
    data_.clear();
    read_pos_ = 0;
  }

  // Drops the first `count` octets by shifting the remainder down — the
  // reassembly buffers' compaction path (keeps a long-lived stream buffer
  // from growing without bound). The read cursor tracks the shift.
  void EraseFront(std::size_t count) {
    if (count == 0) return;
    if (count >= data_.size()) {
      Clear();
      return;
    }
    data_.erase(data_.begin(), data_.begin() + static_cast<std::ptrdiff_t>(count));
    read_pos_ -= std::min(read_pos_, count);
  }
  void Reserve(std::size_t n) { data_.reserve(n); }

  std::string ToString() const {
    return std::string(reinterpret_cast<const char*>(data_.data()),
                       data_.size());
  }

  // Hex dump of the first `max_bytes` octets; for protocol tests and logs.
  std::string HexDump(std::size_t max_bytes = 64) const;

  friend bool operator==(const ByteBuffer& a, const ByteBuffer& b) {
    return a.data_ == b.data_;
  }

 private:
  friend class BufferPool;

  // Hands the backing store back to pool_ (no-op when unpooled). Defined in
  // byte_buffer.cc to break the header cycle with BufferPool.
  void ReleaseToPool() noexcept;

  std::vector<std::uint8_t> data_;
  std::size_t read_pos_ = 0;
  BufferPool* pool_ = nullptr;
};

}  // namespace cool
