// Minimal leveled logger. Defaults to kWarn so tests and benchmarks stay
// quiet; examples raise the level to narrate protocol activity.
#pragma once

#include <atomic>
#include <sstream>
#include <string>
#include <string_view>

namespace cool {

enum class LogLevel : int { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

// Process-wide minimum level.
void SetLogLevel(LogLevel level) noexcept;
LogLevel GetLogLevel() noexcept;
bool LogEnabled(LogLevel level) noexcept;

// Emits one formatted line to stderr (thread-safe, single write call).
void LogLine(LogLevel level, std::string_view component, std::string_view msg);

namespace internal {

class LogMessage {
 public:
  LogMessage(LogLevel level, std::string_view component)
      : level_(level), component_(component) {}
  ~LogMessage() { LogLine(level_, component_, stream_.str()); }

  std::ostringstream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::string_view component_;
  std::ostringstream stream_;
};

}  // namespace internal

// Usage: COOL_LOG(kInfo, "giop") << "sent Request id=" << id;
#define COOL_LOG(level, component)                          \
  if (!::cool::LogEnabled(::cool::LogLevel::level)) {       \
  } else                                                    \
    ::cool::internal::LogMessage(::cool::LogLevel::level,   \
                                 (component))               \
        .stream()

}  // namespace cool
