// Status / Result: value-based error handling for internal (non-CORBA-visible)
// APIs. CORBA-visible failures use the cool::SystemException hierarchy in
// src/orb/exceptions.h; everything below the ORB surface returns these types.
#pragma once

#include <cassert>
#include <optional>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>
#include <variant>

namespace cool {

// Broad error taxonomy shared by all substrates. Kept deliberately small:
// callers branch on "can I retry / renegotiate / must I give up", not on
// subsystem-specific detail (which lives in the message).
enum class ErrorCode {
  kOk = 0,
  kInvalidArgument,   // caller bug: malformed input
  kFailedPrecondition,// object in the wrong state for this call
  kNotFound,          // name/key/object does not exist
  kAlreadyExists,     // duplicate registration
  kResourceExhausted, // admission control / buffers / budget denied
  kUnavailable,       // peer or link (transiently) down
  kDeadlineExceeded,  // timed out
  kCancelled,         // explicitly cancelled by the caller
  kProtocolError,     // malformed or unexpected wire data
  kUnsupported,       // feature not provided by this implementation
  kInternal,          // invariant violation; indicates a bug
};

std::string_view ErrorCodeName(ErrorCode code) noexcept;

// A cheap, copyable success-or-error value. An OK Status carries no message.
class [[nodiscard]] Status {
 public:
  Status() noexcept : code_(ErrorCode::kOk) {}
  Status(ErrorCode code, std::string message)
      : code_(code), message_(std::move(message)) {
    assert(code != ErrorCode::kOk && "use Status::Ok() for success");
  }

  static Status Ok() noexcept { return Status(); }

  bool ok() const noexcept { return code_ == ErrorCode::kOk; }
  ErrorCode code() const noexcept { return code_; }
  const std::string& message() const noexcept { return message_; }

  // "code: message" for logs and test failure output.
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) noexcept {
    return a.code_ == b.code_;  // messages are for humans, not dispatch
  }

 private:
  ErrorCode code_;
  std::string message_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

// Convenience constructors, mirroring the taxonomy above.
inline Status InvalidArgumentError(std::string msg) {
  return {ErrorCode::kInvalidArgument, std::move(msg)};
}
inline Status FailedPreconditionError(std::string msg) {
  return {ErrorCode::kFailedPrecondition, std::move(msg)};
}
inline Status NotFoundError(std::string msg) {
  return {ErrorCode::kNotFound, std::move(msg)};
}
inline Status AlreadyExistsError(std::string msg) {
  return {ErrorCode::kAlreadyExists, std::move(msg)};
}
inline Status ResourceExhaustedError(std::string msg) {
  return {ErrorCode::kResourceExhausted, std::move(msg)};
}
inline Status UnavailableError(std::string msg) {
  return {ErrorCode::kUnavailable, std::move(msg)};
}
inline Status DeadlineExceededError(std::string msg) {
  return {ErrorCode::kDeadlineExceeded, std::move(msg)};
}
inline Status CancelledError(std::string msg) {
  return {ErrorCode::kCancelled, std::move(msg)};
}
inline Status ProtocolError(std::string msg) {
  return {ErrorCode::kProtocolError, std::move(msg)};
}
inline Status UnsupportedError(std::string msg) {
  return {ErrorCode::kUnsupported, std::move(msg)};
}
inline Status InternalError(std::string msg) {
  return {ErrorCode::kInternal, std::move(msg)};
}

// Result<T>: either a value or a non-OK Status. Modeled after absl::StatusOr.
template <typename T>
class [[nodiscard]] Result {
 public:
  // Intentionally implicit: lets `return value;` and `return SomeError(...)`
  // both work from functions returning Result<T>.
  Result(T value) : rep_(std::move(value)) {}
  Result(Status status) : rep_(std::move(status)) {
    assert(!std::get<Status>(rep_).ok() &&
           "Result<T> must not hold an OK Status");
  }

  bool ok() const noexcept { return std::holds_alternative<T>(rep_); }
  explicit operator bool() const noexcept { return ok(); }

  const Status& status() const noexcept {
    static const Status kOk;
    // get_if instead of ok() + get: the single-branch form keeps GCC 12's
    // -Wmaybe-uninitialized from inventing a read of the Status alternative
    // at call sites where the variant provably holds a value.
    const Status* s = std::get_if<Status>(&rep_);
    return s != nullptr ? *s : kOk;
  }

  T& value() & {
    assert(ok());
    return std::get<T>(rep_);
  }
  const T& value() const& {
    assert(ok());
    return std::get<T>(rep_);
  }
  T&& value() && {
    assert(ok());
    return std::get<T>(std::move(rep_));
  }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

  // value_or: fallback for soft-failure call sites.
  T value_or(T fallback) const& { return ok() ? value() : std::move(fallback); }

 private:
  std::variant<T, Status> rep_;
};

// RETURN_IF_ERROR: early-exit plumbing for Status-returning internals.
#define COOL_RETURN_IF_ERROR(expr)                  \
  do {                                              \
    ::cool::Status _cool_status = (expr);           \
    if (!_cool_status.ok()) return _cool_status;    \
  } while (false)

#define COOL_CONCAT_INNER(a, b) a##b
#define COOL_CONCAT(a, b) COOL_CONCAT_INNER(a, b)

#define COOL_ASSIGN_OR_RETURN_IMPL(tmp, decl, expr) \
  auto tmp = (expr);                                \
  if (!tmp.ok()) return tmp.status();               \
  decl = std::move(tmp).value()

#define COOL_ASSIGN_OR_RETURN(decl, expr) \
  COOL_ASSIGN_OR_RETURN_IMPL(COOL_CONCAT(_cool_result_, __LINE__), decl, expr)

}  // namespace cool
