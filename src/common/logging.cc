#include "common/logging.h"

#include <cstdio>

#include "common/clock.h"

namespace cool {

namespace {

std::atomic<int> g_level{static_cast<int>(LogLevel::kWarn)};

std::string_view LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF  ";
  }
  return "?????";
}

}  // namespace

void SetLogLevel(LogLevel level) noexcept {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLogLevel() noexcept {
  return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed));
}

bool LogEnabled(LogLevel level) noexcept {
  return static_cast<int>(level) >= g_level.load(std::memory_order_relaxed);
}

void LogLine(LogLevel level, std::string_view component,
             std::string_view msg) {
  static TimePoint start = Now();
  const double t_ms = ToMillis(Now() - start);
  // One fprintf call keeps lines whole under concurrency.
  std::fprintf(stderr, "[%10.3f] %.*s [%.*s] %.*s\n", t_ms,
               static_cast<int>(LevelName(level).size()),
               LevelName(level).data(), static_cast<int>(component.size()),
               component.data(), static_cast<int>(msg.size()), msg.data());
}

}  // namespace cool
