// Runtime deadlock-freedom toolkit (DESIGN.md §11):
//
//  1. Lock-order enforcement. With COOL_DEADLOCK_DETECTOR=ON, cool::Mutex
//     and cool::SharedMutex call the On* hooks below around every acquire
//     and release. Each thread keeps a stack of held locks; each acquire
//     (a) checks rank monotonicity against common/lock_rank.h and
//     (b) inserts "held -> acquiring" edges into one process-wide
//     GraphCycles. A rank inversion or a cycle (a lock-order inversion
//     that could deadlock under the right interleaving, even if this run
//     never deadlocked) produces a fatal report carrying both acquisition
//     stacks. Running the full test suite with the detector on turns it
//     into a lock-order oracle.
//
//  2. Reactor-context blocking guard. Reactor callbacks and dispatch-pool
//     upcalls run on shared run-to-completion workers: one unbounded wait
//     stalls every connection pinned to that worker. Reactor::WorkerLoop
//     and DispatchPool::WorkerLoop mark their upcall scope with
//     ScopedContext; the blocking primitives (CondVar::Wait, BlockingQueue
//     blocking push/pop, wire::RecvFrameFor, sim::WaitSet::Wait) call
//     AssertBlockingAllowed, which reports when a non-timed blocking wait
//     runs inside such a scope. Sites that block *by design* (bounded
//     backpressure) annotate themselves with ScopedBlockingAllowed and a
//     justification comment.
//
// The context markers are always compiled (a thread_local byte); the
// hooks, checks and reports are active only when COOL_DEADLOCK_DETECTOR
// is defined, so release builds pay nothing on the lock hot path.
#pragma once

#include <string>

#include "common/lock_rank.h"

namespace cool::deadlock {

// ---------------------------------------------------------------------------
// Execution-context marker (always available).

enum class Context : unsigned char {
  kNone = 0,
  kReactorCallback = 1,  // inside Reactor worker running a registration
  kDispatchUpcall = 2,   // inside a DispatchPool servant upcall
};

Context CurrentContext() noexcept;

// RAII: marks the current thread as running in `ctx` (restores on exit).
class ScopedContext {
 public:
  explicit ScopedContext(Context ctx) noexcept;
  ~ScopedContext();

  ScopedContext(const ScopedContext&) = delete;
  ScopedContext& operator=(const ScopedContext&) = delete;

 private:
  Context prev_;
};

// RAII: the enclosed scope may block even in a restricted context. Reserved
// for waits that are bounded by design (e.g. dispatch-queue backpressure);
// every use carries a justification comment.
class ScopedBlockingAllowed {
 public:
  ScopedBlockingAllowed() noexcept;
  ~ScopedBlockingAllowed();

  ScopedBlockingAllowed(const ScopedBlockingAllowed&) = delete;
  ScopedBlockingAllowed& operator=(const ScopedBlockingAllowed&) = delete;
};

// True unless the thread is in a reactor/dispatch context without an
// active ScopedBlockingAllowed.
bool BlockingAllowed() noexcept;

// ---------------------------------------------------------------------------
// Reporting.

struct Report {
  enum class Kind {
    kCycle,             // lock-order cycle (potential deadlock)
    kRankViolation,     // acquired an outer-ranked lock under an inner one
    kRecursiveLock,     // same mutex acquired twice on one thread
    kBlockingInContext  // unbounded wait inside a reactor/dispatch upcall
  };
  Kind kind;
  std::string message;  // full human-readable report (stacks included)
};

// Installed handler receives every detector report. The default prints to
// stderr and aborts. Returns the previous handler; tests swap in a
// capturing handler to assert on reports without dying.
using ReportHandler = void (*)(const Report&);
ReportHandler SetReportHandler(ReportHandler handler) noexcept;

// ---------------------------------------------------------------------------
// Detector hooks (called by cool::Mutex/CondVar when COOL_DEADLOCK_DETECTOR
// is defined; no-ops otherwise so unit tests can poke them directly).

// Pre-acquire: rank check + graph edges from every held lock, then pushes
// the lock onto the thread's held stack.
void OnLockAcquire(const void* mu, LockRank rank, const char* name);

// Post-TryLock-success: pushes without inserting edges (a try-lock cannot
// block, so it creates no deadlock edge — but later blocking acquires
// under it do).
void OnLockTryAcquired(const void* mu, LockRank rank, const char* name);

// Pops the lock from the thread's held stack.
void OnLockRelease(const void* mu);

// Forgets the mutex entirely (graph node removal). Called from ~Mutex.
void OnLockDestroy(const void* mu);

// CondVar::Wait* releases and reacquires `mu` internally: bracket the wait
// so the held stack matches reality while the thread sleeps.
void OnCondVarWaitBegin(const void* mu);
void OnCondVarWaitEnd(const void* mu, LockRank rank, const char* name);

// Reports kBlockingInContext when an unbounded wait named `what` runs in a
// restricted context (active only with COOL_DEADLOCK_DETECTOR).
void AssertBlockingAllowed(const char* what);

// Test support: number of locks the calling thread currently holds
// according to the detector.
int HeldLockCount() noexcept;

}  // namespace cool::deadlock
