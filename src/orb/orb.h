// The ORB core: ties the object adapter, the GIOP message layer and the
// three transports (TCP, IPC, Da CaPo) together on one endsystem, exactly
// the component stack of the paper's Fig. 1:
//
//     Client | Object Impl.
//     Stubs  | Skeletons
//          Object Adapter            (client AND server side — colocation)
//     Generic Message Protocol Layer (GIOP 1.0 / GIOP 9.9 QoS extension)
//     Generic Transport Protocol Layer
//     TCP/IP | Chorus IPC | Da CaPo
#pragma once

#include <array>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/mutex.h"
#include "common/thread.h"
#include "dacapo/config_manager.h"
#include "dacapo/resource_manager.h"
#include "giop/dispatch_pool.h"
#include "giop/engine.h"
#include "orb/object_adapter.h"
#include "orb/object_ref.h"
#include "transport/dacapo_channel.h"
#include "transport/ipc_channel.h"
#include "transport/qos_egress.h"
#include "transport/reactor.h"
#include "transport/tcp_channel.h"

namespace cool::orb {

class ORB {
 public:
  struct Options {
    // Server side accepts GIOP 9.9; client side emits it for QoS-bearing
    // invocations. Off = unmodified COOL (for the response-time baseline
    // and backwards-compatibility tests).
    bool enable_qos_extension = true;
    // What the local Da CaPo believes about the network (fed to the
    // configuration manager and the transport capability).
    dacapo::NetworkEstimate estimate{};
    std::uint16_t tcp_port = 7001;
    std::uint16_t ipc_port = 7002;
    std::uint16_t dacapo_port = 7003;
    corba::OctetSeq principal{};
    // Optional server-side resource admission for Da CaPo connections.
    dacapo::ResourceManager* resources = nullptr;
    // Size of the ORB-wide servant dispatch pool shared by every
    // connection (0 = inline dispatch on the reactor worker — only for
    // tests that need strictly serial upcalls).
    std::size_t giop_worker_threads = giop::DefaultWorkerThreads();
    // Which scheduler arbitrates the shared dispatch pool (README
    // "qos_scheduler" knobs). kFlatPriority restores the legacy strict-
    // priority scan — the in-run baseline for bench_qos_fairness.
    giop::DispatchScheduler qos_scheduler =
        giop::DispatchScheduler::kHierarchical;
    // WFQ weights of the High/Normal/Low dispatch bands.
    std::array<std::uint32_t, giop::kDispatchClasses> dispatch_class_weights{
        8, 4, 1};
    // CoDel AQM on the per-binding dispatch queues (and, with qos_egress,
    // on the egress tickets). Shed dispatches surface as TRANSIENT at the
    // client — an explicit policy opt-in.
    bool codel_enabled = false;
    Duration codel_target = milliseconds(5);
    Duration codel_interval = milliseconds(100);
    // Weighted-fair egress arbitration mounted on every Da CaPo channel
    // this ORB accepts or opens (off = direct sends, the historical
    // first-grabbed-lock-wins behaviour). Channels opened for clients
    // borrow the ORB's scheduler, so the ORB must outlive them.
    bool qos_egress = false;
    // Reactor worker loops carrying all connection I/O (reads, accepts,
    // demux); 0 = one per hardware thread. The thread count is flat in the
    // number of connections.
    unsigned reactor_threads = 0;
    // BESS-style per-core placement of the reactor workers. Combined with
    // the fixed connection -> worker mapping this keeps each connection's
    // state on one cache domain (see transport::Reactor::Options).
    bool pin_reactor_workers = false;
    // Close accepted connections that carried no inbound traffic for this
    // long (zero = never). Deadlines ride the reactor's lazily-cancelled
    // timer heap, so 100k parked connections cost no scanning — each holds
    // at most one pending heap entry.
    Duration idle_timeout = Duration::zero();
  };

  ORB(sim::Network* net, std::string host);
  ORB(sim::Network* net, std::string host, Options options);
  ~ORB();

  ORB(const ORB&) = delete;
  ORB& operator=(const ORB&) = delete;

  const std::string& host() const noexcept { return host_; }
  const Options& options() const noexcept { return options_; }
  ObjectAdapter& adapter() noexcept { return adapter_; }
  sim::Network* network() noexcept { return net_; }

  // --- server side ---------------------------------------------------------
  // Activates `servant` and returns a reference clients can bind to over
  // `preferred` transport.
  Result<ObjectRef> RegisterServant(const std::string& name,
                                    std::shared_ptr<Servant> servant,
                                    Protocol preferred = Protocol::kTcp);

  // Starts listening + accepting on all three transports.
  Status Start();
  void Shutdown();
  bool running() const noexcept { return running_; }

  // --- client-side plumbing (used by Stub) -----------------------------------
  // Opens a transport channel toward `ref` with unilateral QoS negotiation
  // (non-empty `qos` over a QoS-less transport fails before any byte is
  // sent, paper §4.3).
  Result<std::unique_ptr<transport::ComChannel>> OpenChannel(
      const ObjectRef& ref, const qos::QoSSpec& qos);

  // Colocation check: true when `ref` names an object active in this
  // ORB's adapter on this endsystem.
  bool IsLocal(const ObjectRef& ref) const;

  std::uint64_t connections_accepted() const noexcept {
    return connections_accepted_.load(std::memory_order_relaxed);
  }
  // Currently open accepted connections, summed across the shards.
  std::size_t connections_live() const;

  // The connection engine (tests/metrics).
  transport::Reactor& reactor() noexcept { return *reactor_; }
  giop::DispatchPool* dispatch_pool() noexcept { return dispatch_pool_.get(); }
  transport::EgressScheduler* egress_scheduler() noexcept {
    return egress_.get();
  }
  // Per-class dispatch counters + sojourn percentiles, and (when mounted)
  // the egress scheduler's bands — the ORB-wide QoS observability surface.
  std::string DescribeDispatchStats() const;

 private:
  // One accepted server-side connection, reactor-driven: the channel's
  // receive readiness feeds a callback that drains frames into the
  // GiopServer, whose upcalls run on the shared dispatch pool. The
  // registration's closure holds the Connection alive, so teardown is
  // naturally deferred past any in-flight callback.
  //
  // Sized for 100k-connection servers: the server is embedded (optional,
  // not unique_ptr — one allocation fewer per connection) and references
  // the ORB's shared immutable Options block; the idle-timeout fields are
  // only ever touched from this connection's own reactor callback, which
  // never runs concurrently with itself, so they need no lock.
  struct Connection {
    std::uint64_t id = 0;
    std::unique_ptr<transport::ComChannel> channel;
    std::optional<giop::GiopServer> server;
    std::uint64_t rx_reg = 0;  // reactor registration (0 = legacy thread)
    // Idle-timeout bookkeeping (reactor callback only, see above).
    TimePoint last_activity{};
    TimePoint armed_deadline{};
  };

  // The connection table is sharded so a 100k-connection churn storm does
  // not serialize every adopt/finish on one mutex; a connection's shard is
  // fixed by its id, and the batched adoption path takes each shard lock
  // once per accept train.
  static constexpr std::size_t kConnShards = 16;
  struct ConnShard {
    mutable Mutex mu{LockRank::kOrb, "orb::ORB::ConnShard::mu"};
    // PER_CONN_WAIVER: per-ORB table of connections (one map per shard),
    // not per-connection state.
    std::unordered_map<std::uint64_t, std::shared_ptr<Connection>> conns
        COOL_GUARDED_BY(mu);
  };

  ConnShard& ShardFor(std::uint64_t id) const noexcept {
    return conn_shards_[id % kConnShards];
  }

  // Reactor accept callback: drains pending channels off `manager` in
  // trains of up to kAcceptTrain, amortizing reactor registration and
  // shard locking over the whole burst.
  void DrainAccept(transport::ComManager* manager);
  // Adopts a train of accepted channels: builds the Connections, registers
  // their receive callbacks in one batch (AddBatch/Attach), publishes them
  // into the shards, and arms idle timers. Falls back to a legacy serve
  // thread for transports without a non-blocking receive.
  void AdoptTrain(
      std::vector<std::unique_ptr<transport::ComChannel>> channels);
  // Reactor receive callback: drains frames; tears the connection down on
  // a terminal status or an expired idle deadline.
  void DrainConnection(const std::shared_ptr<Connection>& conn);
  void FinishConnection(const std::shared_ptr<Connection>& conn);
  // Embeds the GIOP server (shared ORB config) into `conn`.
  void EmplaceServer(Connection& conn);
  // Legacy path: blocking serve loop on a dedicated thread.
  void ServeConnection(std::uint64_t id, std::shared_ptr<Connection> conn);
  // Joins legacy serve threads whose loops have ended. Runs on adopt and —
  // eagerly — at the tail of every ServeConnection, so finished threads
  // never pile up waiting for the next accept or shutdown.
  void ReapFinishedThreads();

  sim::Network* net_;
  std::string host_;
  Options options_;
  ObjectAdapter adapter_;

  transport::TcpComManager tcp_;
  transport::IpcComManager ipc_;
  transport::DacapoComManager dacapo_;

  std::atomic<bool> running_{false};
  std::atomic<bool> shutdown_{false};

  // Declared before the connection state: destroyed after it, so a
  // Connection destructor can still detach from the pool, and reactor
  // teardown (which drops registration closures, i.e. Connection refs)
  // happens while the pool is alive. The egress scheduler likewise
  // outlives every channel that attached to it.
  std::unique_ptr<transport::EgressScheduler> egress_;
  std::unique_ptr<giop::DispatchPool> dispatch_pool_;
  std::unique_ptr<transport::Reactor> reactor_;
  std::vector<std::uint64_t> accept_regs_;

  // One immutable GIOP server config shared by every accepted connection
  // (the per-GiopServer Options copy used to cost ~100 bytes × N conns).
  std::shared_ptr<const giop::GiopServer::Options> server_options_;

  mutable std::array<ConnShard, kConnShards> conn_shards_;
  std::atomic<std::uint64_t> connections_accepted_{0};

  // Legacy-path serve threads (transports without a non-blocking receive)
  // and the ids of loops that have since ended, awaiting a join.
  mutable Mutex legacy_mu_{LockRank::kOrb, "orb::ORB::legacy_mu_"};
  // PER_CONN_WAIVER: legacy-transport bookkeeping table, not a member of
  // the per-connection struct.
  std::unordered_map<std::uint64_t, Thread> connection_threads_
      COOL_GUARDED_BY(legacy_mu_);
  std::vector<std::uint64_t> finished_connections_ COOL_GUARDED_BY(legacy_mu_);
};

}  // namespace cool::orb
