// The ORB core: ties the object adapter, the GIOP message layer and the
// three transports (TCP, IPC, Da CaPo) together on one endsystem, exactly
// the component stack of the paper's Fig. 1:
//
//     Client | Object Impl.
//     Stubs  | Skeletons
//          Object Adapter            (client AND server side — colocation)
//     Generic Message Protocol Layer (GIOP 1.0 / GIOP 9.9 QoS extension)
//     Generic Transport Protocol Layer
//     TCP/IP | Chorus IPC | Da CaPo
#pragma once

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/mutex.h"
#include "common/thread.h"
#include "dacapo/config_manager.h"
#include "dacapo/resource_manager.h"
#include "orb/object_adapter.h"
#include "orb/object_ref.h"
#include "transport/dacapo_channel.h"
#include "transport/ipc_channel.h"
#include "transport/tcp_channel.h"

namespace cool::orb {

class ORB {
 public:
  struct Options {
    // Server side accepts GIOP 9.9; client side emits it for QoS-bearing
    // invocations. Off = unmodified COOL (for the response-time baseline
    // and backwards-compatibility tests).
    bool enable_qos_extension = true;
    // What the local Da CaPo believes about the network (fed to the
    // configuration manager and the transport capability).
    dacapo::NetworkEstimate estimate{};
    std::uint16_t tcp_port = 7001;
    std::uint16_t ipc_port = 7002;
    std::uint16_t dacapo_port = 7003;
    corba::OctetSeq principal{};
    // Optional server-side resource admission for Da CaPo connections.
    dacapo::ResourceManager* resources = nullptr;
    // Worker-pool size of each per-connection GiopServer (0 = inline
    // dispatch in the receive loop; see giop::GiopServer::Options).
    std::size_t giop_worker_threads = giop::DefaultWorkerThreads();
  };

  ORB(sim::Network* net, std::string host);
  ORB(sim::Network* net, std::string host, Options options);
  ~ORB();

  ORB(const ORB&) = delete;
  ORB& operator=(const ORB&) = delete;

  const std::string& host() const noexcept { return host_; }
  const Options& options() const noexcept { return options_; }
  ObjectAdapter& adapter() noexcept { return adapter_; }
  sim::Network* network() noexcept { return net_; }

  // --- server side ---------------------------------------------------------
  // Activates `servant` and returns a reference clients can bind to over
  // `preferred` transport.
  Result<ObjectRef> RegisterServant(const std::string& name,
                                    std::shared_ptr<Servant> servant,
                                    Protocol preferred = Protocol::kTcp);

  // Starts listening + accepting on all three transports.
  Status Start();
  void Shutdown();
  bool running() const noexcept { return running_; }

  // --- client-side plumbing (used by Stub) -----------------------------------
  // Opens a transport channel toward `ref` with unilateral QoS negotiation
  // (non-empty `qos` over a QoS-less transport fails before any byte is
  // sent, paper §4.3).
  Result<std::unique_ptr<transport::ComChannel>> OpenChannel(
      const ObjectRef& ref, const qos::QoSSpec& qos);

  // Colocation check: true when `ref` names an object active in this
  // ORB's adapter on this endsystem.
  bool IsLocal(const ObjectRef& ref) const;

  std::uint64_t connections_accepted() const;

 private:
  void AcceptLoop(transport::ComManager* manager, std::stop_token stop);
  void ServeConnection(std::uint64_t id,
                       std::unique_ptr<transport::ComChannel> channel);

  sim::Network* net_;
  std::string host_;
  Options options_;
  ObjectAdapter adapter_;

  transport::TcpComManager tcp_;
  transport::IpcComManager ipc_;
  transport::DacapoComManager dacapo_;

  std::atomic<bool> running_{false};
  std::atomic<bool> shutdown_{false};
  std::vector<Thread> accept_threads_;

  mutable Mutex conn_mu_;
  std::uint64_t next_conn_id_ COOL_GUARDED_BY(conn_mu_) = 1;
  std::unordered_map<std::uint64_t, transport::ComChannel*> live_channels_
      COOL_GUARDED_BY(conn_mu_);
  std::unordered_map<std::uint64_t, Thread> connection_threads_
      COOL_GUARDED_BY(conn_mu_);
  // Connections whose serve loop ended; their threads are joined and
  // reaped by the next accept (long-running servers stay bounded).
  std::vector<std::uint64_t> finished_connections_ COOL_GUARDED_BY(conn_mu_);
  std::uint64_t connections_accepted_ COOL_GUARDED_BY(conn_mu_) = 0;
};

}  // namespace cool::orb
