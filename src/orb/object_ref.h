// Object references: which object, on which endsystem, over which
// transport. The stringified form plays the role of COOL's stringified IOR
// ("generation and interpretation of object references" is an Object
// Adapter service, paper §2):
//
//   cool-ior:<protocol>@<host>:<port>/<hex-object-key>?type=<repository-id>
#pragma once

#include <string>

#include "cdr/types.h"
#include "common/status.h"
#include "sim/address.h"

namespace cool::orb {

enum class Protocol { kTcp, kIpc, kDacapo };

std::string_view ProtocolName(Protocol p) noexcept;
Result<Protocol> ProtocolFromName(std::string_view name);

struct ObjectRef {
  Protocol protocol = Protocol::kTcp;
  sim::Address endpoint;          // the transport manager's listen address
  corba::OctetSeq object_key;     // adapter-scoped object identity
  std::string repository_id;      // interface type id

  std::string ToString() const;   // the stringified IOR
  static Result<ObjectRef> FromString(const std::string& ior);

  // Same object, reachable over a different transport endpoint.
  ObjectRef WithProtocol(Protocol p, sim::Address ep) const {
    ObjectRef copy = *this;
    copy.protocol = p;
    copy.endpoint = std::move(ep);
    return copy;
  }

  friend bool operator==(const ObjectRef&, const ObjectRef&) = default;
};

}  // namespace cool::orb
