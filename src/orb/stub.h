// Client-side stub base. Generated stubs (src/idl) and the dynamic
// invocation surface both sit on this class. It owns the binding to the
// target object and implements the paper's client-visible QoS API:
//
//  * SetQoSParameter — the method our modified Chic generates into every
//    stub ("setQoSParameter(struct QoSParameter** qp)"): stores the QoS
//    spec, turns the implicit binding into an explicit one, triggers the
//    unilateral transport negotiation, and attaches qos_params to every
//    subsequent Request (GIOP 9.9).
//  * Never call it -> pure GIOP 1.0, byte-identical to unmodified COOL.
//  * Call it once -> per-binding QoS; call it before every invocation ->
//    per-method QoS (paper §4.1).
//
// Invocation modes mirror the paper's Fig. 8 list: synchronous (call),
// one-way (send), deferred synchronous (defer/poll), asynchronous reply
// (notify), and cancel.
#pragma once

#include <functional>

#include "common/buffer_pool.h"
#include "common/mutex.h"
#include "common/thread.h"
#include "giop/engine.h"
#include "orb/orb.h"

namespace cool::orb {

class Stub {
 public:
  Stub(ORB* orb, ObjectRef ref);
  virtual ~Stub();

  Stub(const Stub&) = delete;
  Stub& operator=(const Stub&) = delete;

  // --- QoS -------------------------------------------------------------------
  // Sets the QoS for every subsequent invocation on this stub. Empty spec
  // reverts to best effort / standard GIOP. Fails (without contacting the
  // server object) when the bound transport cannot satisfy the spec.
  Status SetQoSParameter(const qos::QoSSpec& spec);
  // Paper-style spelling.
  Status setQoSParameter(const qos::QoSSpec& spec) {
    return SetQoSParameter(spec);
  }
  qos::QoSSpec qos() const;
  // False until SetQoSParameter is first called (implicit binding), true
  // after (explicit, client-controlled binding).
  bool explicit_binding() const;

  // --- invocation -------------------------------------------------------------
  // Encoder for operation arguments (alignment-compatible with the Request
  // splice point). Encodes into a pooled buffer; the storage returns to
  // the pool when the caller's ByteBuffer dies.
  cdr::Encoder MakeArgsEncoder() const {
    return cdr::Encoder(order_, 0, BufferPool::Default().Lease());
  }

  // A decoded invocation outcome. `status` distinguishes normal results
  // from a user exception body; system exceptions surface as the
  // Result's error. `payload` owns the bytes the decoder reads — for a
  // remote call it is the whole GIOP reply frame adopted from the engine
  // (no copy), with the results starting at `results_offset`; for a
  // colocated call it is the dispatch body itself (offset 0).
  struct ReplyData {
    giop::ReplyStatus status = giop::ReplyStatus::kNoException;
    ByteBuffer payload;
    cdr::ByteOrder order = cdr::NativeOrder();
    std::size_t results_offset = 0;

    cdr::Decoder MakeDecoder() const {
      return cdr::Decoder(payload.view().subspan(results_offset), order,
                          results_offset);
    }
  };

  // Synchronous two-way call.
  Result<ReplyData> Invoke(const std::string& operation,
                           std::span<const corba::Octet> args,
                           Duration timeout = seconds(10));
  // One-way call.
  Status InvokeOneway(const std::string& operation,
                      std::span<const corba::Octet> args);
  // Deferred synchronous.
  Result<corba::ULong> InvokeDeferred(const std::string& operation,
                                      std::span<const corba::Octet> args);
  Result<ReplyData> PollReply(corba::ULong request_id,
                              Duration timeout = seconds(10));
  Status CancelRequest(corba::ULong request_id);
  // Asynchronous reply: callback runs on an internal thread.
  using AsyncCallback = std::function<void(Result<ReplyData>)>;
  Status InvokeAsync(const std::string& operation,
                     std::span<const corba::Octet> args,
                     AsyncCallback callback);

  // GIOP LocateRequest probe.
  Result<bool> LocateObject(Duration timeout = seconds(10));

  // Drops the binding; the next invocation rebinds (with the current QoS).
  Status Unbind();

  const ObjectRef& ref() const noexcept { return ref_; }
  // "", or the protocol of the live binding ("tcp", "ipc", "dacapo",
  // "colocated").
  std::string_view bound_protocol() const;

 private:
  // One live transport binding. Shared so concurrent invocations can keep
  // it alive across an Unbind: the stub lock only covers the snapshot, the
  // actual exchange runs lock-free and pipelines through the GiopClient
  // demultiplexer. Member order matters: the client is destroyed first
  // (joining its demux reader) while the channel is still alive.
  struct Binding {
    std::unique_ptr<transport::ComChannel> channel;
    std::unique_ptr<giop::GiopClient> client;
  };

  // Everything an invocation needs, snapshotted under mu_: the binding
  // (null when the target is colocated) and the QoS spec in force.
  struct CallContext {
    std::shared_ptr<Binding> binding;
    std::vector<qos::QoSParameter> qos;
  };

  // Establishes the binding if absent (implicit binding on first call).
  Status EnsureBoundLocked() COOL_REQUIRES(mu_);
  Result<CallContext> PrepareCall();
  // Takes the Reply by value: the reply frame moves into the ReplyData.
  Result<ReplyData> FromGiopReply(giop::GiopClient::Reply reply) const;
  Result<ReplyData> InvokeColocated(
      const std::string& operation, std::span<const corba::Octet> args,
      const std::vector<qos::QoSParameter>& qos_params);

  ORB* orb_;
  ObjectRef ref_;
  cdr::ByteOrder order_ = cdr::NativeOrder();

  mutable Mutex mu_{LockRank::kOrb, "orb::Stub::mu_"};
  std::shared_ptr<Binding> binding_ COOL_GUARDED_BY(mu_);
  qos::QoSSpec qos_ COOL_GUARDED_BY(mu_);
  bool explicit_binding_ COOL_GUARDED_BY(mu_) = false;
  bool colocated_ COOL_GUARDED_BY(mu_) = false;

  Mutex async_mu_{LockRank::kOrb, "orb::Stub::async_mu_"};
  std::vector<Thread> async_threads_ COOL_GUARDED_BY(async_mu_);
};

}  // namespace cool::orb
