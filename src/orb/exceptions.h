// CORBA system exceptions — the "standard CORBA exception mechanism" the
// paper uses for the QoS NACK (Fig. 3-i). On the wire a SYSTEM_EXCEPTION
// Reply body is: repository id string, minor code ulong, completion status
// ulong (CORBA 2.0 §12.4.2).
//
// Internally exceptions are carried as Status values; the repository id
// maps bijectively onto our ErrorCode taxonomy so client code can branch
// with plain status checks (kResourceExhausted == NO_RESOURCES == QoS NACK).
#pragma once

#include <string>
#include <string_view>

#include "cdr/decoder.h"
#include "cdr/encoder.h"
#include "common/status.h"

namespace cool::orb {

enum class CompletionStatus : corba::ULong {
  kYes = 0,
  kNo = 1,
  kMaybe = 2,
};

// Repository ids of the system exceptions this ORB raises.
namespace sysex {
inline constexpr std::string_view kUnknown = "IDL:omg.org/CORBA/UNKNOWN:1.0";
inline constexpr std::string_view kBadParam =
    "IDL:omg.org/CORBA/BAD_PARAM:1.0";
// The QoS NACK: "it sends a negative acknowledgement (NACK) to the client
// with the standard CORBA exception mechanism".
inline constexpr std::string_view kNoResources =
    "IDL:omg.org/CORBA/NO_RESOURCES:1.0";
inline constexpr std::string_view kCommFailure =
    "IDL:omg.org/CORBA/COMM_FAILURE:1.0";
inline constexpr std::string_view kObjectNotExist =
    "IDL:omg.org/CORBA/OBJECT_NOT_EXIST:1.0";
inline constexpr std::string_view kBadOperation =
    "IDL:omg.org/CORBA/BAD_OPERATION:1.0";
inline constexpr std::string_view kNoImplement =
    "IDL:omg.org/CORBA/NO_IMPLEMENT:1.0";
inline constexpr std::string_view kTimeout =
    "IDL:omg.org/CORBA/TIMEOUT:1.0";
inline constexpr std::string_view kTransient =
    "IDL:omg.org/CORBA/TRANSIENT:1.0";
}  // namespace sysex

struct SystemException {
  std::string repo_id{sysex::kUnknown};
  corba::ULong minor = 0;
  CompletionStatus completed = CompletionStatus::kNo;

  void Encode(cdr::Encoder& enc) const;
  static Result<SystemException> Decode(cdr::Decoder& dec);

  // Status <-> exception mapping (see file comment).
  Status ToStatus() const;
  static SystemException FromStatus(const Status& status,
                                    CompletionStatus completed =
                                        CompletionStatus::kNo);

  std::string ToString() const;
};

}  // namespace cool::orb
