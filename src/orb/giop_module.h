// Fig. 7 alternative (ii): "a more Da CaPo centric approach, where message
// protocols are seen as ordinary Da CaPo modules performing this specific
// task. ... message protocols have to be wrapped into Da CaPo modules
// performing COOL specific functionality regarding formatting of incoming
// and outgoing messages, interacting with client side stubs, and
// interacting with server side object adapter to locate object
// implementations."
//
// The paper implemented alternative (i) (Da CaPo below the generic
// transport layer) and left (ii) as design discussion; we build both.
//
//  * GiopServerAModule — the server's GIOP engine as the top (A) module of
//    a Da CaPo chain: parses Requests arriving up the graph, upcalls the
//    object adapter, and pushes Replies back down. No generic transport
//    layer, no per-connection server thread: the module's own thread IS
//    the dispatcher.
//  * SessionComChannel — the client-side counterpart: a thin ComChannel
//    over a raw Da CaPo session (one GIOP message per packet), so the
//    ordinary GiopClient drives an alternative-(ii) server unchanged.
#pragma once

#include <atomic>

#include "common/mutex.h"
#include "common/thread.h"
#include "dacapo/module.h"
#include "dacapo/session.h"
#include "giop/message.h"
#include "orb/object_adapter.h"
#include "transport/com_channel.h"

namespace cool::orb {

class GiopServerAModule : public dacapo::Module {
 public:
  struct Options {
    bool accept_qos_extension = true;
    cdr::ByteOrder order = cdr::NativeOrder();
  };

  explicit GiopServerAModule(ObjectAdapter* adapter)
      : GiopServerAModule(adapter, Options()) {}
  GiopServerAModule(ObjectAdapter* adapter, Options options)
      : adapter_(adapter), options_(options) {}

  std::string_view name() const override { return "giop_a"; }

  void HandleData(dacapo::Direction dir, dacapo::PacketPtr pkt,
                  dacapo::ModulePort& port) override;

  std::uint64_t requests_served() const noexcept {
    return requests_served_.load(std::memory_order_relaxed);
  }

 private:
  void SendMessage(const ByteBuffer& msg, dacapo::ModulePort& port);
  // Assembles the Reply directly in an arena packet (header + reply-header
  // CDR + body appended in place) instead of staging a full-message buffer.
  void SendReply(giop::Version version, const giop::ReplyHeader& reply,
                 std::span<const corba::Octet> body,
                 dacapo::ModulePort& port);
  void HandleRequest(const giop::ParsedMessage& msg,
                     dacapo::ModulePort& port);

  ObjectAdapter* adapter_;
  Options options_;
  // Atomic because tests read it while the module thread serves; dispatch
  // itself stays inline on the module thread — in alternative (ii) the
  // message protocol lives inside the Da CaPo graph, whose runtime already
  // serializes a module's upcalls (no worker pool here by design).
  std::atomic<std::uint64_t> requests_served_{0};
};

// Client-side: GIOP messages ride 1:1 in Da CaPo packets. Messages must
// fit one packet (no fragmentation — alternative (ii) keeps the message
// protocol inside the graph, so oversized messages are the application's
// problem, as in the original design sketch).
class SessionComChannel : public transport::ComChannel {
 public:
  explicit SessionComChannel(std::unique_ptr<dacapo::Session> session)
      : session_(std::move(session)) {}
  ~SessionComChannel() override;

  std::string_view protocol() const override { return "dacapo-alt2"; }

  Status SendMessage(std::span<const std::uint8_t> message) override {
    return session_->Send(message);
  }
  Result<ByteBuffer> ReceiveMessage(Duration timeout) override {
    COOL_ASSIGN_OR_RETURN(std::vector<std::uint8_t> payload,
                          session_->Receive(timeout));
    return ByteBuffer(std::move(payload));
  }
  Result<std::optional<ByteBuffer>> TryReceiveMessage() override {
    Result<dacapo::ReceivedMessage> got = session_->TryReceivePacket();
    if (!got.ok()) return got.status();  // kUnavailable once closed+drained
    if (!*got) return std::optional<ByteBuffer>(std::nullopt);
    return std::optional<ByteBuffer>(ByteBuffer(
        std::vector<std::uint8_t>(got->data().begin(), got->data().end())));
  }
  bool RegisterRx(const sim::WaitSet& set, std::uint64_t token) override {
    session_->WatchRx(set, token);
    return true;
  }
  void Close() override { session_->Close(); }

  dacapo::Session& session() { return *session_; }

 private:
  std::unique_ptr<dacapo::Session> session_;
};

// An alternative-(ii) server endpoint: accepts Da CaPo connections whose
// accepted sessions are built with a GiopServerAModule as their layer-A
// module — the GIOP engine runs *inside* the module graph, on the module's
// own thread. There is no generic transport layer and no per-connection
// GIOP server thread on this path.
class Alt2Server {
 public:
  Alt2Server(sim::Network* net, sim::Address listen, ObjectAdapter* adapter);
  Alt2Server(sim::Network* net, sim::Address listen, ObjectAdapter* adapter,
             GiopServerAModule::Options options);
  ~Alt2Server();

  Status Start();
  void Shutdown();

  std::uint64_t connections() const;

 private:
  void AcceptLoop(std::stop_token stop);

  dacapo::Acceptor acceptor_;
  ObjectAdapter* adapter_;
  GiopServerAModule::Options options_;
  Thread accept_thread_;

  mutable Mutex mu_{LockRank::kOrb, "orb::Alt2Server::mu_"};
  std::vector<std::unique_ptr<dacapo::Session>> sessions_
      COOL_GUARDED_BY(mu_);
  std::uint64_t connections_ COOL_GUARDED_BY(mu_) = 0;
  std::atomic<bool> shutdown_{false};
};

}  // namespace cool::orb
