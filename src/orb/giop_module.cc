#include "orb/giop_module.h"

#include "common/logging.h"

namespace cool::orb {

void GiopServerAModule::SendMessage(const ByteBuffer& msg,
                                    dacapo::ModulePort& port) {
  auto pkt = port.arena().Make(msg.view());
  if (!pkt.ok()) {
    COOL_LOG(kWarn, "orb") << "giop_a: reply dropped, " << pkt.status();
    return;
  }
  port.ForwardDown(std::move(pkt).value());
}

void GiopServerAModule::SendReply(giop::Version version,
                                  const giop::ReplyHeader& reply,
                                  std::span<const corba::Octet> body,
                                  dacapo::ModulePort& port) {
  const ByteBuffer hdr_body = giop::BuildReplyHeaderBody(reply, options_.order);
  const auto head = giop::HeaderBytes(
      version, giop::MsgType::kReply,
      static_cast<corba::ULong>(hdr_body.size() + body.size()),
      options_.order);
  auto pkt = port.arena().Allocate();
  if (!pkt.ok()) {
    COOL_LOG(kWarn, "orb") << "giop_a: reply dropped, " << pkt.status();
    return;
  }
  dacapo::PacketPtr p = std::move(pkt).value();
  // A fresh packet is empty, so PushTrailer appends each piece in place.
  if (!p->PushTrailer(head).ok() || !p->PushTrailer(hdr_body.view()).ok() ||
      !p->PushTrailer(body).ok()) {
    COOL_LOG(kWarn, "orb") << "giop_a: reply exceeds packet capacity";
    return;
  }
  port.ForwardDown(std::move(p));
}

void GiopServerAModule::HandleRequest(const giop::ParsedMessage& msg,
                                      dacapo::ModulePort& port) {
  cdr::Decoder dec = msg.MakeBodyDecoder();
  auto header = giop::ParseRequestHeader(dec, msg.header.version);
  if (!header.ok()) {
    SendMessage(giop::BuildMessageError(giop::kGiop10, options_.order), port);
    return;
  }
  const giop::GiopServer::DispatchResult result =
      adapter_->Dispatch(*header, dec, options_.order);
  requests_served_.fetch_add(1, std::memory_order_relaxed);
  if (!header->response_expected) return;

  giop::ReplyHeader reply;
  reply.request_id = header->request_id;
  reply.reply_status = result.status;
  SendReply(msg.header.version, reply, result.body.view(), port);
}

void GiopServerAModule::HandleData(dacapo::Direction dir,
                                   dacapo::PacketPtr pkt,
                                   dacapo::ModulePort& port) {
  if (dir == dacapo::Direction::kDown) {
    // Server role: nothing above us injects requests; pass through so the
    // module also composes as a transparent element if ever mid-chain.
    port.ForwardDown(std::move(pkt));
    return;
  }

  auto parsed = giop::ParseMessage(pkt->Data());
  pkt.reset();  // free the packet before building the reply
  if (!parsed.ok()) {
    SendMessage(giop::BuildMessageError(giop::kGiop10, options_.order), port);
    return;
  }
  const giop::MessageHeader& h = parsed->header;

  const bool version_ok =
      h.version == giop::kGiop10 ||
      (h.version == giop::kGiopQos && options_.accept_qos_extension);
  if (!version_ok) {
    SendMessage(giop::BuildMessageError(giop::kGiop10, options_.order), port);
    return;
  }

  switch (h.message_type) {
    case giop::MsgType::kRequest:
      HandleRequest(*parsed, port);
      return;
    case giop::MsgType::kLocateRequest: {
      cdr::Decoder dec = parsed->MakeBodyDecoder();
      auto locate = giop::ParseLocateRequestHeader(dec);
      if (!locate.ok()) return;
      giop::LocateReplyHeader reply;
      reply.request_id = locate->request_id;
      reply.locate_status = adapter_->Exists(locate->object_key)
                                ? giop::LocateStatus::kObjectHere
                                : giop::LocateStatus::kUnknownObject;
      SendMessage(giop::BuildLocateReply(h.version, reply, options_.order),
                  port);
      return;
    }
    case giop::MsgType::kCancelRequest:
    case giop::MsgType::kCloseConnection:
      return;  // serialized module dispatch: nothing in flight to cancel
    case giop::MsgType::kMessageError:
      COOL_LOG(kWarn, "orb") << "giop_a: peer reported MessageError";
      return;
    default:
      SendMessage(giop::BuildMessageError(giop::kGiop10, options_.order),
                  port);
      return;
  }
}

// --- SessionComChannel -----------------------------------------------------------

SessionComChannel::~SessionComChannel() {
  Close();
  DrainAsync();
}

// --- Alt2Server --------------------------------------------------------------------

Alt2Server::Alt2Server(sim::Network* net, sim::Address listen,
                       ObjectAdapter* adapter)
    : Alt2Server(net, std::move(listen), adapter,
                 GiopServerAModule::Options()) {}

Alt2Server::Alt2Server(sim::Network* net, sim::Address listen,
                       ObjectAdapter* adapter,
                       GiopServerAModule::Options options)
    : acceptor_(net, std::move(listen)), adapter_(adapter),
      options_(options) {
  acceptor_.SetAModuleFactory([this]() -> std::unique_ptr<dacapo::Module> {
    return std::make_unique<GiopServerAModule>(adapter_, options_);
  });
}

Alt2Server::~Alt2Server() { Shutdown(); }

Status Alt2Server::Start() {
  COOL_RETURN_IF_ERROR(acceptor_.Listen());
  accept_thread_ = Thread([this](std::stop_token st) { AcceptLoop(st); });
  return Status::Ok();
}

void Alt2Server::Shutdown() {
  if (shutdown_.exchange(true)) return;
  acceptor_.Close();
  if (accept_thread_.joinable()) {
    accept_thread_.request_stop();
    accept_thread_.join();
  }
  MutexLock lock(mu_);
  for (auto& session : sessions_) session->Close();
}

void Alt2Server::AcceptLoop(std::stop_token stop) {
  while (!stop.stop_requested()) {
    auto session = acceptor_.Accept();
    if (!session.ok()) return;  // acceptor closed
    MutexLock lock(mu_);
    if (shutdown_.load()) return;
    ++connections_;
    sessions_.push_back(std::move(session).value());
  }
}

std::uint64_t Alt2Server::connections() const {
  MutexLock lock(mu_);
  return connections_;
}

}  // namespace cool::orb
