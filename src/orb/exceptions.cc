#include "orb/exceptions.h"

namespace cool::orb {

void SystemException::Encode(cdr::Encoder& enc) const {
  enc.PutString(repo_id);
  enc.PutULong(minor);
  enc.PutULong(static_cast<corba::ULong>(completed));
}

Result<SystemException> SystemException::Decode(cdr::Decoder& dec) {
  SystemException ex;
  COOL_ASSIGN_OR_RETURN(ex.repo_id, dec.GetString());
  COOL_ASSIGN_OR_RETURN(ex.minor, dec.GetULong());
  COOL_ASSIGN_OR_RETURN(corba::ULong completed, dec.GetULong());
  if (completed > static_cast<corba::ULong>(CompletionStatus::kMaybe)) {
    return Status(ProtocolError("bad completion status"));
  }
  ex.completed = static_cast<CompletionStatus>(completed);
  return ex;
}

Status SystemException::ToStatus() const {
  const std::string msg = "system exception " + repo_id + " (minor " +
                          std::to_string(minor) + ")";
  if (repo_id == sysex::kNoResources) return ResourceExhaustedError(msg);
  if (repo_id == sysex::kObjectNotExist) return NotFoundError(msg);
  if (repo_id == sysex::kBadParam) return InvalidArgumentError(msg);
  if (repo_id == sysex::kBadOperation) return UnsupportedError(msg);
  if (repo_id == sysex::kNoImplement) return UnsupportedError(msg);
  if (repo_id == sysex::kCommFailure) return UnavailableError(msg);
  if (repo_id == sysex::kTransient) return UnavailableError(msg);
  if (repo_id == sysex::kTimeout) return DeadlineExceededError(msg);
  return InternalError(msg);
}

SystemException SystemException::FromStatus(const Status& status,
                                            CompletionStatus completed) {
  SystemException ex;
  ex.completed = completed;
  switch (status.code()) {
    case ErrorCode::kResourceExhausted:
      ex.repo_id = sysex::kNoResources;
      break;
    case ErrorCode::kNotFound:
      ex.repo_id = sysex::kObjectNotExist;
      break;
    case ErrorCode::kInvalidArgument:
      ex.repo_id = sysex::kBadParam;
      break;
    case ErrorCode::kUnsupported:
      ex.repo_id = sysex::kBadOperation;
      break;
    case ErrorCode::kUnavailable:
      ex.repo_id = sysex::kCommFailure;
      break;
    case ErrorCode::kDeadlineExceeded:
      ex.repo_id = sysex::kTimeout;
      break;
    default:
      ex.repo_id = sysex::kUnknown;
      break;
  }
  return ex;
}

std::string SystemException::ToString() const {
  return repo_id + "{minor=" + std::to_string(minor) + ", completed=" +
         std::to_string(static_cast<corba::ULong>(completed)) + "}";
}

}  // namespace cool::orb
