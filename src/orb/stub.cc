#include "orb/stub.h"

#include "common/logging.h"
#include "orb/exceptions.h"

namespace cool::orb {

Stub::Stub(ORB* orb, ObjectRef ref) : orb_(orb), ref_(std::move(ref)) {}

Stub::~Stub() {
  (void)Unbind();
  std::vector<Thread> threads;
  {
    MutexLock lock(async_mu_);
    threads.swap(async_threads_);
  }
  for (auto& t : threads) {
    if (t.joinable()) t.join();
  }
}

Status Stub::EnsureBoundLocked() {
  if (colocated_ || binding_ != nullptr) return Status::Ok();

  // Colocation fast path (paper §2: the Object Adapter "is designed to
  // optimize colocated scenarios").
  if (orb_->IsLocal(ref_)) {
    colocated_ = true;
    return Status::Ok();
  }

  // Implicit binding: set up during the first method invocation. The QoS
  // spec in force participates in transport selection/configuration —
  // "request connection with QoS" in the paper's Fig. 4.
  auto binding = std::make_shared<Binding>();
  COOL_ASSIGN_OR_RETURN(binding->channel, orb_->OpenChannel(ref_, qos_));
  giop::GiopClient::Options opts;
  opts.use_qos_extension = orb_->options().enable_qos_extension;
  opts.order = order_;
  opts.principal = orb_->options().principal;
  binding->client = std::make_unique<giop::GiopClient>(
      binding->channel.get(), opts);
  binding_ = std::move(binding);
  return Status::Ok();
}

Result<Stub::CallContext> Stub::PrepareCall() {
  MutexLock lock(mu_);
  COOL_RETURN_IF_ERROR(EnsureBoundLocked());
  CallContext ctx;
  ctx.binding = binding_;  // null when colocated
  ctx.qos = qos_.parameters();
  return ctx;
}

Status Stub::SetQoSParameter(const qos::QoSSpec& spec) {
  MutexLock lock(mu_);
  explicit_binding_ = true;

  if (colocated_) {
    // No transport involved; bilateral negotiation against the servant
    // still happens per invocation.
    qos_ = spec;
    return Status::Ok();
  }

  if (binding_ != nullptr) {
    // Existing binding: unilateral transport re-negotiation (paper §4.3).
    // TCP/IPC answer kUnsupported here for non-empty specs.
    COOL_RETURN_IF_ERROR(binding_->channel->SetQoSParameter(spec));
  } else if (orb_->IsLocal(ref_)) {
    // Colocated target: no transport to negotiate with; the bilateral
    // negotiation against the servant happens per invocation.
    colocated_ = true;
  } else if (!spec.empty()) {
    // Not bound yet: pre-screen the spec against the transport this
    // reference names so impossible requests fail at specification time,
    // not at the first invocation.
    if (ref_.protocol != Protocol::kDacapo) {
      return UnsupportedError(
          std::string(ProtocolName(ref_.protocol)) +
          " transport does not implement setQoSParameter");
    }
  }
  qos_ = spec;
  return Status::Ok();
}

qos::QoSSpec Stub::qos() const {
  MutexLock lock(mu_);
  return qos_;
}

bool Stub::explicit_binding() const {
  MutexLock lock(mu_);
  return explicit_binding_;
}

std::string_view Stub::bound_protocol() const {
  MutexLock lock(mu_);
  if (colocated_) return "colocated";
  if (binding_ != nullptr) return binding_->channel->protocol();
  return "";
}

Status Stub::Unbind() {
  std::shared_ptr<Binding> binding;
  {
    MutexLock lock(mu_);
    binding = std::move(binding_);
    colocated_ = false;
  }
  if (binding != nullptr) {
    // Invocations still holding the snapshot keep the Binding alive; the
    // channel close fails them with kUnavailable. The demux reader is
    // joined when the last snapshot releases the Binding.
    (void)binding->client->SendClose();
    binding->channel->Close();
  }
  return Status::Ok();
}

Result<Stub::ReplyData> Stub::FromGiopReply(giop::GiopClient::Reply reply) const {
  switch (reply.header.reply_status) {
    case giop::ReplyStatus::kNoException:
    case giop::ReplyStatus::kUserException: {
      ReplyData data;
      data.status = reply.header.reply_status;
      data.order = reply.message.header.byte_order;
      data.results_offset = reply.ResultsMessageOffset();
      // Adopt the whole reply frame: the results decoder aliases it in
      // place, so the body is never copied between wire and caller.
      data.payload = std::move(reply.message.buffer);
      return data;
    }
    case giop::ReplyStatus::kSystemException: {
      cdr::Decoder dec = reply.MakeResultsDecoder();
      COOL_ASSIGN_OR_RETURN(SystemException ex, SystemException::Decode(dec));
      return ex.ToStatus();
    }
    case giop::ReplyStatus::kLocationForward:
      return Status(UnsupportedError("LOCATION_FORWARD not supported"));
  }
  return Status(InternalError("bad reply status"));
}

Result<Stub::ReplyData> Stub::InvokeColocated(
    const std::string& operation, std::span<const corba::Octet> args,
    const std::vector<qos::QoSParameter>& qos_params) {
  cdr::Decoder arg_dec(args, order_, 0);
  giop::GiopServer::DispatchResult result =
      orb_->adapter().DispatchLocal(ref_.object_key, operation, qos_params,
                                    arg_dec, order_);
  switch (result.status) {
    case giop::ReplyStatus::kNoException:
    case giop::ReplyStatus::kUserException: {
      ReplyData data;
      data.status = result.status;
      data.order = order_;
      data.payload = std::move(result.body);
      data.results_offset = 0;
      return data;
    }
    case giop::ReplyStatus::kSystemException: {
      cdr::Decoder dec(result.body.view(), order_, 0);
      COOL_ASSIGN_OR_RETURN(SystemException ex, SystemException::Decode(dec));
      return ex.ToStatus();
    }
    case giop::ReplyStatus::kLocationForward:
      return Status(UnsupportedError("LOCATION_FORWARD not supported"));
  }
  return Status(InternalError("bad dispatch status"));
}

Result<Stub::ReplyData> Stub::Invoke(const std::string& operation,
                                     std::span<const corba::Octet> args,
                                     Duration timeout) {
  COOL_ASSIGN_OR_RETURN(CallContext ctx, PrepareCall());
  if (ctx.binding == nullptr) return InvokeColocated(operation, args, ctx.qos);
  COOL_ASSIGN_OR_RETURN(
      giop::GiopClient::Reply reply,
      ctx.binding->client->Invoke(ref_.object_key, operation, args, ctx.qos,
                                  timeout));
  return FromGiopReply(std::move(reply));
}

Status Stub::InvokeOneway(const std::string& operation,
                          std::span<const corba::Octet> args) {
  COOL_ASSIGN_OR_RETURN(CallContext ctx, PrepareCall());
  if (ctx.binding == nullptr) {
    auto discarded = InvokeColocated(operation, args, ctx.qos);
    return Status::Ok();  // one-way: outcome intentionally dropped
  }
  return ctx.binding->client->InvokeOneway(ref_.object_key, operation, args,
                                           ctx.qos);
}

Result<corba::ULong> Stub::InvokeDeferred(
    const std::string& operation, std::span<const corba::Octet> args) {
  COOL_ASSIGN_OR_RETURN(CallContext ctx, PrepareCall());
  if (ctx.binding == nullptr) {
    return Status(
        UnsupportedError("deferred invocation on a colocated object"));
  }
  return ctx.binding->client->InvokeDeferred(ref_.object_key, operation,
                                             args, ctx.qos);
}

Result<Stub::ReplyData> Stub::PollReply(corba::ULong request_id,
                                        Duration timeout) {
  std::shared_ptr<Binding> binding;
  {
    MutexLock lock(mu_);
    binding = binding_;
  }
  if (binding == nullptr) {
    return Status(FailedPreconditionError("no binding"));
  }
  COOL_ASSIGN_OR_RETURN(giop::GiopClient::Reply reply,
                        binding->client->PollReply(request_id, timeout));
  return FromGiopReply(std::move(reply));
}

Status Stub::CancelRequest(corba::ULong request_id) {
  std::shared_ptr<Binding> binding;
  {
    MutexLock lock(mu_);
    binding = binding_;
  }
  if (binding == nullptr) {
    return FailedPreconditionError("no binding");
  }
  return binding->client->Cancel(request_id);
}

Status Stub::InvokeAsync(const std::string& operation,
                         std::span<const corba::Octet> args,
                         AsyncCallback callback) {
  // Capture everything by value; the worker re-enters Invoke, which
  // snapshots the binding itself. Concurrent async invocations pipeline
  // over the one channel instead of queueing on the stub lock. This is the
  // single surviving copy on the async path — the caller's args span dies
  // when this call returns, but the worker thread outlives it.
  std::vector<corba::Octet> args_copy(args.begin(), args.end());
  MutexLock lock(async_mu_);
  async_threads_.emplace_back(
      [this, operation, args_copy = std::move(args_copy),
       cb = std::move(callback)](std::stop_token) {
        cb(Invoke(operation, args_copy));
      });
  return Status::Ok();
}

Result<bool> Stub::LocateObject(Duration timeout) {
  COOL_ASSIGN_OR_RETURN(CallContext ctx, PrepareCall());
  if (ctx.binding == nullptr) return true;  // colocated
  COOL_ASSIGN_OR_RETURN(giop::LocateStatus status,
                        ctx.binding->client->Locate(ref_.object_key, timeout));
  return status == giop::LocateStatus::kObjectHere;
}

}  // namespace cool::orb
