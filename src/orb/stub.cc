#include "orb/stub.h"

#include "common/logging.h"
#include "orb/exceptions.h"

namespace cool::orb {

Stub::Stub(ORB* orb, ObjectRef ref) : orb_(orb), ref_(std::move(ref)) {}

Stub::~Stub() {
  {
    MutexLock lock(mu_);
    if (client_ != nullptr) (void)client_->SendClose();
    if (channel_ != nullptr) channel_->Close();
  }
  std::vector<Thread> threads;
  {
    MutexLock lock(async_mu_);
    threads.swap(async_threads_);
  }
  for (auto& t : threads) {
    if (t.joinable()) t.join();
  }
}

Status Stub::EnsureBoundLocked() {
  if (colocated_ || channel_ != nullptr) return Status::Ok();

  // Colocation fast path (paper §2: the Object Adapter "is designed to
  // optimize colocated scenarios").
  if (orb_->IsLocal(ref_)) {
    colocated_ = true;
    return Status::Ok();
  }

  // Implicit binding: set up during the first method invocation. The QoS
  // spec in force participates in transport selection/configuration —
  // "request connection with QoS" in the paper's Fig. 4.
  COOL_ASSIGN_OR_RETURN(channel_, orb_->OpenChannel(ref_, qos_));
  giop::GiopClient::Options opts;
  opts.use_qos_extension = orb_->options().enable_qos_extension;
  opts.order = order_;
  opts.principal = orb_->options().principal;
  client_ = std::make_unique<giop::GiopClient>(channel_.get(), opts);
  return Status::Ok();
}

Status Stub::SetQoSParameter(const qos::QoSSpec& spec) {
  MutexLock lock(mu_);
  explicit_binding_ = true;

  if (colocated_) {
    // No transport involved; bilateral negotiation against the servant
    // still happens per invocation.
    qos_ = spec;
    return Status::Ok();
  }

  if (channel_ != nullptr) {
    // Existing binding: unilateral transport re-negotiation (paper §4.3).
    // TCP/IPC answer kUnsupported here for non-empty specs.
    COOL_RETURN_IF_ERROR(channel_->SetQoSParameter(spec));
  } else if (orb_->IsLocal(ref_)) {
    // Colocated target: no transport to negotiate with; the bilateral
    // negotiation against the servant happens per invocation.
    colocated_ = true;
  } else if (!spec.empty()) {
    // Not bound yet: pre-screen the spec against the transport this
    // reference names so impossible requests fail at specification time,
    // not at the first invocation.
    if (ref_.protocol != Protocol::kDacapo) {
      return UnsupportedError(
          std::string(ProtocolName(ref_.protocol)) +
          " transport does not implement setQoSParameter");
    }
  }
  qos_ = spec;
  return Status::Ok();
}

qos::QoSSpec Stub::qos() const {
  MutexLock lock(mu_);
  return qos_;
}

bool Stub::explicit_binding() const {
  MutexLock lock(mu_);
  return explicit_binding_;
}

std::string_view Stub::bound_protocol() const {
  MutexLock lock(mu_);
  if (colocated_) return "colocated";
  if (channel_ != nullptr) return channel_->protocol();
  return "";
}

Status Stub::Unbind() {
  MutexLock lock(mu_);
  if (client_ != nullptr) (void)client_->SendClose();
  if (channel_ != nullptr) channel_->Close();
  client_.reset();
  channel_.reset();
  colocated_ = false;
  return Status::Ok();
}

Result<Stub::ReplyData> Stub::FromGiopReply(
    const giop::GiopClient::Reply& reply) const {
  switch (reply.header.reply_status) {
    case giop::ReplyStatus::kNoException:
    case giop::ReplyStatus::kUserException: {
      ReplyData data;
      data.status = reply.header.reply_status;
      data.order = reply.message.header.byte_order;
      const std::span<const corba::Octet> results = reply.ResultsBytes();
      data.body = ByteBuffer(results);
      data.base_offset = reply.ResultsMessageOffset();
      return data;
    }
    case giop::ReplyStatus::kSystemException: {
      cdr::Decoder dec = reply.MakeResultsDecoder();
      COOL_ASSIGN_OR_RETURN(SystemException ex, SystemException::Decode(dec));
      return ex.ToStatus();
    }
    case giop::ReplyStatus::kLocationForward:
      return Status(UnsupportedError("LOCATION_FORWARD not supported"));
  }
  return Status(InternalError("bad reply status"));
}

Result<Stub::ReplyData> Stub::InvokeColocated(
    const std::string& operation, std::span<const corba::Octet> args) {
  cdr::Decoder arg_dec(args, order_, 0);
  const giop::GiopServer::DispatchResult result =
      orb_->adapter().DispatchLocal(ref_.object_key, operation,
                                    qos_.parameters(), arg_dec, order_);
  switch (result.status) {
    case giop::ReplyStatus::kNoException:
    case giop::ReplyStatus::kUserException: {
      ReplyData data;
      data.status = result.status;
      data.order = order_;
      data.body = result.body;
      data.base_offset = 0;
      return data;
    }
    case giop::ReplyStatus::kSystemException: {
      cdr::Decoder dec(result.body.view(), order_, 0);
      COOL_ASSIGN_OR_RETURN(SystemException ex, SystemException::Decode(dec));
      return ex.ToStatus();
    }
    case giop::ReplyStatus::kLocationForward:
      return Status(UnsupportedError("LOCATION_FORWARD not supported"));
  }
  return Status(InternalError("bad dispatch status"));
}

Result<Stub::ReplyData> Stub::Invoke(const std::string& operation,
                                     std::span<const corba::Octet> args,
                                     Duration timeout) {
  MutexLock lock(mu_);
  COOL_RETURN_IF_ERROR(EnsureBoundLocked());
  if (colocated_) return InvokeColocated(operation, args);
  COOL_ASSIGN_OR_RETURN(
      giop::GiopClient::Reply reply,
      client_->Invoke(ref_.object_key, operation, args, qos_.parameters(),
                      timeout));
  return FromGiopReply(reply);
}

Status Stub::InvokeOneway(const std::string& operation,
                          std::span<const corba::Octet> args) {
  MutexLock lock(mu_);
  COOL_RETURN_IF_ERROR(EnsureBoundLocked());
  if (colocated_) {
    auto discarded = InvokeColocated(operation, args);
    return Status::Ok();  // one-way: outcome intentionally dropped
  }
  return client_->InvokeOneway(ref_.object_key, operation, args,
                               qos_.parameters());
}

Result<corba::ULong> Stub::InvokeDeferred(
    const std::string& operation, std::span<const corba::Octet> args) {
  MutexLock lock(mu_);
  COOL_RETURN_IF_ERROR(EnsureBoundLocked());
  if (colocated_) {
    return Status(
        UnsupportedError("deferred invocation on a colocated object"));
  }
  return client_->InvokeDeferred(ref_.object_key, operation, args,
                                 qos_.parameters());
}

Result<Stub::ReplyData> Stub::PollReply(corba::ULong request_id,
                                        Duration timeout) {
  MutexLock lock(mu_);
  if (client_ == nullptr) {
    return Status(FailedPreconditionError("no binding"));
  }
  COOL_ASSIGN_OR_RETURN(giop::GiopClient::Reply reply,
                        client_->PollReply(request_id, timeout));
  return FromGiopReply(reply);
}

Status Stub::CancelRequest(corba::ULong request_id) {
  MutexLock lock(mu_);
  if (client_ == nullptr) {
    return FailedPreconditionError("no binding");
  }
  return client_->Cancel(request_id);
}

Status Stub::InvokeAsync(const std::string& operation,
                         std::span<const corba::Octet> args,
                         AsyncCallback callback) {
  // Capture everything by value; the worker re-enters Invoke which takes
  // the stub lock itself.
  std::vector<corba::Octet> args_copy(args.begin(), args.end());
  MutexLock lock(async_mu_);
  async_threads_.emplace_back(
      [this, operation, args_copy = std::move(args_copy),
       cb = std::move(callback)](std::stop_token) {
        cb(Invoke(operation, args_copy));
      });
  return Status::Ok();
}

Result<bool> Stub::LocateObject(Duration timeout) {
  MutexLock lock(mu_);
  COOL_RETURN_IF_ERROR(EnsureBoundLocked());
  if (colocated_) return true;
  COOL_ASSIGN_OR_RETURN(giop::LocateStatus status,
                        client_->Locate(ref_.object_key, timeout));
  return status == giop::LocateStatus::kObjectHere;
}

}  // namespace cool::orb
