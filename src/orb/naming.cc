#include "orb/naming.h"

#include <algorithm>

namespace cool::orb {

DispatchOutcome NamingServant::Dispatch(std::string_view operation,
                                        cdr::Decoder& args,
                                        cdr::Encoder& out) {
  if (operation == "bind" || operation == "rebind") {
    auto name = args.GetString();
    auto ior = args.GetString();
    if (!name.ok() || !ior.ok()) {
      return DispatchOutcome::Fail(InvalidArgumentError("bad args"));
    }
    const Status s = operation == "bind" ? Bind(*name, *ior)
                                         : Rebind(*name, *ior);
    if (!s.ok()) return DispatchOutcome::Fail(s);
    return DispatchOutcome::Ok();
  }
  if (operation == "resolve") {
    auto name = args.GetString();
    if (!name.ok()) {
      return DispatchOutcome::Fail(InvalidArgumentError("bad args"));
    }
    auto ior = Resolve(*name);
    if (!ior.ok()) return DispatchOutcome::Fail(ior.status());
    out.PutString(*ior);
    return DispatchOutcome::Ok();
  }
  if (operation == "unbind") {
    auto name = args.GetString();
    if (!name.ok()) {
      return DispatchOutcome::Fail(InvalidArgumentError("bad args"));
    }
    if (Status s = Unbind(*name); !s.ok()) return DispatchOutcome::Fail(s);
    return DispatchOutcome::Ok();
  }
  if (operation == "list") {
    const std::vector<std::string> names = List();
    out.PutULong(static_cast<corba::ULong>(names.size()));
    for (const std::string& n : names) out.PutString(n);
    return DispatchOutcome::Ok();
  }
  return DispatchOutcome::Fail(
      UnsupportedError("unknown operation on NamingContext"));
}

Status NamingServant::Bind(const std::string& name, const std::string& ior) {
  if (name.empty()) return InvalidArgumentError("empty name");
  MutexLock lock(mu_);
  const auto [it, inserted] = bindings_.try_emplace(name, ior);
  (void)it;
  if (!inserted) return AlreadyExistsError("name already bound: " + name);
  return Status::Ok();
}

Status NamingServant::Rebind(const std::string& name,
                             const std::string& ior) {
  if (name.empty()) return InvalidArgumentError("empty name");
  MutexLock lock(mu_);
  bindings_[name] = ior;
  return Status::Ok();
}

Result<std::string> NamingServant::Resolve(const std::string& name) const {
  MutexLock lock(mu_);
  const auto it = bindings_.find(name);
  if (it == bindings_.end()) {
    return Status(NotFoundError("no binding for name: " + name));
  }
  return it->second;
}

Status NamingServant::Unbind(const std::string& name) {
  MutexLock lock(mu_);
  if (bindings_.erase(name) == 0) {
    return NotFoundError("no binding for name: " + name);
  }
  return Status::Ok();
}

std::vector<std::string> NamingServant::List() const {
  MutexLock lock(mu_);
  std::vector<std::string> names;
  names.reserve(bindings_.size());
  for (const auto& [name, ior] : bindings_) names.push_back(name);
  return names;  // std::map iterates sorted
}

// --- NamingClient ----------------------------------------------------------------

namespace {

ObjectRef NamingRef(const sim::Address& endpoint, Protocol protocol) {
  ObjectRef ref;
  ref.protocol = protocol;
  ref.endpoint = endpoint;
  ref.object_key.assign(NamingServant::kObjectName.begin(),
                        NamingServant::kObjectName.end());
  ref.repository_id = "IDL:cool/NamingContext:1.0";
  return ref;
}

}  // namespace

NamingClient::NamingClient(ORB* orb, const sim::Address& naming_endpoint,
                           Protocol protocol)
    : stub_(orb, NamingRef(naming_endpoint, protocol)) {}

Status NamingClient::Bind(const std::string& name, const ObjectRef& ref) {
  cdr::Encoder args = stub_.MakeArgsEncoder();
  args.PutString(name);
  args.PutString(ref.ToString());
  COOL_ASSIGN_OR_RETURN(auto reply,
                        stub_.Invoke("bind", args.buffer().view()));
  (void)reply;
  return Status::Ok();
}

Status NamingClient::Rebind(const std::string& name, const ObjectRef& ref) {
  cdr::Encoder args = stub_.MakeArgsEncoder();
  args.PutString(name);
  args.PutString(ref.ToString());
  COOL_ASSIGN_OR_RETURN(auto reply,
                        stub_.Invoke("rebind", args.buffer().view()));
  (void)reply;
  return Status::Ok();
}

Result<ObjectRef> NamingClient::Resolve(const std::string& name) {
  cdr::Encoder args = stub_.MakeArgsEncoder();
  args.PutString(name);
  COOL_ASSIGN_OR_RETURN(auto reply,
                        stub_.Invoke("resolve", args.buffer().view()));
  cdr::Decoder dec = reply.MakeDecoder();
  COOL_ASSIGN_OR_RETURN(corba::String ior, dec.GetString());
  return ObjectRef::FromString(ior);
}

Status NamingClient::Unbind(const std::string& name) {
  cdr::Encoder args = stub_.MakeArgsEncoder();
  args.PutString(name);
  COOL_ASSIGN_OR_RETURN(auto reply,
                        stub_.Invoke("unbind", args.buffer().view()));
  (void)reply;
  return Status::Ok();
}

Result<std::vector<std::string>> NamingClient::List() {
  COOL_ASSIGN_OR_RETURN(auto reply, stub_.Invoke("list", {}));
  cdr::Decoder dec = reply.MakeDecoder();
  COOL_ASSIGN_OR_RETURN(corba::ULong count, dec.GetULong());
  if (count > dec.remaining()) {
    return Status(ProtocolError("implausible name count"));
  }
  std::vector<std::string> names;
  names.reserve(count);
  for (corba::ULong i = 0; i < count; ++i) {
    COOL_ASSIGN_OR_RETURN(corba::String name, dec.GetString());
    names.push_back(std::move(name));
  }
  return names;
}

}  // namespace cool::orb
