// Object Adapter (paper §2): activation/deactivation of implementations,
// mapping object references (keys) to implementations, and the server-side
// upcall path: QoS negotiation (paper §4.2) followed by method dispatch.
// COOL places an adapter on both the server side (below skeletons) and the
// client side (below stubs) to optimize colocated scenarios; the ORB's
// colocation fast path calls DispatchLocal directly on this class.
#pragma once

#include <atomic>
#include <map>
#include <memory>
#include <string>

#include "common/mutex.h"
#include "giop/engine.h"
#include "orb/exceptions.h"
#include "orb/servant.h"

namespace cool::orb {

class ObjectAdapter {
 public:
  // Activates a servant under `name`; the object key is derived from it.
  // Fails with kAlreadyExists if the name is taken.
  Result<corba::OctetSeq> Activate(const std::string& name,
                                   std::shared_ptr<Servant> servant);
  Status Deactivate(const corba::OctetSeq& object_key);

  std::shared_ptr<Servant> Find(const corba::OctetSeq& object_key) const;
  bool Exists(const corba::OctetSeq& object_key) const;
  std::size_t active_count() const;

  // The GIOP-facing upcall: negotiates qos_params against the servant and
  // dispatches. Produces a complete DispatchResult (NO_EXCEPTION /
  // USER_EXCEPTION / SYSTEM_EXCEPTION with encoded body). Called
  // concurrently by GiopServer pool workers: the servant lookup is a
  // locked snapshot, and the NegotiateQoS/Dispatch upcalls run outside
  // the adapter lock (servants own their own synchronisation).
  giop::GiopServer::DispatchResult Dispatch(const giop::RequestHeader& header,
                                            cdr::Decoder& args,
                                            cdr::ByteOrder order);

  // Colocation fast path: same semantics as Dispatch but callable directly
  // from a client-side stub in the same endsystem, skipping GIOP and the
  // transport entirely.
  giop::GiopServer::DispatchResult DispatchLocal(
      const corba::OctetSeq& object_key, std::string_view operation,
      const std::vector<qos::QoSParameter>& qos_params, cdr::Decoder& args,
      cdr::ByteOrder order);

  // Number of QoS negotiations that ended in a NACK (for tests/metrics).
  std::uint64_t qos_nacks() const;

 private:
  giop::GiopServer::DispatchResult DispatchImpl(
      const corba::OctetSeq& object_key, std::string_view operation,
      const std::vector<qos::QoSParameter>& qos_params, cdr::Decoder& args,
      cdr::ByteOrder order);

  static giop::GiopServer::DispatchResult MakeSystemException(
      const Status& status, cdr::ByteOrder order);

  mutable Mutex mu_;
  std::map<corba::OctetSeq, std::shared_ptr<Servant>> servants_
      COOL_GUARDED_BY(mu_);
  // Atomic, not mu_-guarded: bumped from concurrent pool-worker upcalls.
  std::atomic<std::uint64_t> qos_nacks_{0};
};

}  // namespace cool::orb
