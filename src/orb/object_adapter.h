// Object Adapter (paper §2): activation/deactivation of implementations,
// mapping object references (keys) to implementations, and the server-side
// upcall path: QoS negotiation (paper §4.2) followed by method dispatch.
// COOL places an adapter on both the server side (below skeletons) and the
// client side (below stubs) to optimize colocated scenarios; the ORB's
// colocation fast path calls DispatchLocal directly on this class.
#pragma once

#include <array>
#include <atomic>
#include <map>
#include <memory>
#include <string>

#include "common/mutex.h"
#include "giop/engine.h"
#include "orb/exceptions.h"
#include "orb/servant.h"

namespace cool::orb {

class ObjectAdapter {
 public:
  // Activates a servant under `name`; the object key is derived from it.
  // Fails with kAlreadyExists if the name is taken.
  Result<corba::OctetSeq> Activate(const std::string& name,
                                   std::shared_ptr<Servant> servant);
  Status Deactivate(const corba::OctetSeq& object_key);

  std::shared_ptr<Servant> Find(const corba::OctetSeq& object_key) const;
  bool Exists(const corba::OctetSeq& object_key) const;
  std::size_t active_count() const;

  // The GIOP-facing upcall: negotiates qos_params against the servant and
  // dispatches. Produces a complete DispatchResult (NO_EXCEPTION /
  // USER_EXCEPTION / SYSTEM_EXCEPTION with encoded body). Called
  // concurrently by GiopServer pool workers: the servant lookup is a
  // locked snapshot, and the NegotiateQoS/Dispatch upcalls run outside
  // the adapter lock (servants own their own synchronisation).
  giop::GiopServer::DispatchResult Dispatch(const giop::RequestHeader& header,
                                            cdr::Decoder& args,
                                            cdr::ByteOrder order);

  // Colocation fast path: same semantics as Dispatch but callable directly
  // from a client-side stub in the same endsystem, skipping GIOP and the
  // transport entirely.
  giop::GiopServer::DispatchResult DispatchLocal(
      const corba::OctetSeq& object_key, std::string_view operation,
      const std::vector<qos::QoSParameter>& qos_params, cdr::Decoder& args,
      cdr::ByteOrder order);

  // Number of QoS negotiations that ended in a NACK (for tests/metrics).
  std::uint64_t qos_nacks() const;

 private:
  giop::GiopServer::DispatchResult DispatchImpl(
      const corba::OctetSeq& object_key, std::string_view operation,
      const std::vector<qos::QoSParameter>& qos_params, cdr::Decoder& args,
      cdr::ByteOrder order);

  static giop::GiopServer::DispatchResult MakeSystemException(
      const Status& status, cdr::ByteOrder order);

  // The servant table is sharded by a hash of the object key so the
  // per-request lookup (one per upcall, from every reactor worker and pool
  // worker at once) never funnels through a single lock.
  static constexpr std::size_t kShards = 16;

  struct Shard {
    mutable Mutex mu{LockRank::kAdapterShard, "orb::ObjectAdapter::Shard::mu"};
    std::map<corba::OctetSeq, std::shared_ptr<Servant>> servants
        COOL_GUARDED_BY(mu);
  };

  static std::size_t ShardIndex(const corba::OctetSeq& object_key) noexcept;
  Shard& ShardFor(const corba::OctetSeq& object_key) noexcept {
    return shards_[ShardIndex(object_key)];
  }
  const Shard& ShardFor(const corba::OctetSeq& object_key) const noexcept {
    return shards_[ShardIndex(object_key)];
  }

  std::array<Shard, kShards> shards_;
  // Atomic, not shard-guarded: bumped from concurrent pool-worker upcalls.
  std::atomic<std::uint64_t> qos_nacks_{0};
};

}  // namespace cool::orb
