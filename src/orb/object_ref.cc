#include "orb/object_ref.h"

#include <charconv>

namespace cool::orb {

namespace {

constexpr std::string_view kScheme = "cool-ior:";

std::string HexEncode(const corba::OctetSeq& bytes) {
  static const char kHex[] = "0123456789abcdef";
  std::string out;
  out.reserve(bytes.size() * 2);
  for (corba::Octet b : bytes) {
    out += kHex[b >> 4];
    out += kHex[b & 0xf];
  }
  return out;
}

Result<corba::OctetSeq> HexDecode(std::string_view hex) {
  if (hex.size() % 2 != 0) {
    return Status(InvalidArgumentError("odd-length hex object key"));
  }
  auto nibble = [](char c) -> int {
    if (c >= '0' && c <= '9') return c - '0';
    if (c >= 'a' && c <= 'f') return c - 'a' + 10;
    if (c >= 'A' && c <= 'F') return c - 'A' + 10;
    return -1;
  };
  corba::OctetSeq out;
  out.reserve(hex.size() / 2);
  for (std::size_t i = 0; i < hex.size(); i += 2) {
    const int hi = nibble(hex[i]);
    const int lo = nibble(hex[i + 1]);
    if (hi < 0 || lo < 0) {
      return Status(InvalidArgumentError("bad hex digit in object key"));
    }
    out.push_back(static_cast<corba::Octet>(hi << 4 | lo));
  }
  return out;
}

}  // namespace

std::string_view ProtocolName(Protocol p) noexcept {
  switch (p) {
    case Protocol::kTcp: return "tcp";
    case Protocol::kIpc: return "ipc";
    case Protocol::kDacapo: return "dacapo";
  }
  return "unknown";
}

Result<Protocol> ProtocolFromName(std::string_view name) {
  if (name == "tcp") return Protocol::kTcp;
  if (name == "ipc") return Protocol::kIpc;
  if (name == "dacapo") return Protocol::kDacapo;
  return Status(InvalidArgumentError("unknown transport protocol: " +
                                     std::string(name)));
}

std::string ObjectRef::ToString() const {
  std::string out(kScheme);
  out += ProtocolName(protocol);
  out += "@";
  out += endpoint.host;
  out += ":";
  out += std::to_string(endpoint.port);
  out += "/";
  out += HexEncode(object_key);
  out += "?type=";
  out += repository_id;
  return out;
}

Result<ObjectRef> ObjectRef::FromString(const std::string& ior) {
  std::string_view s(ior);
  if (!s.starts_with(kScheme)) {
    return Status(InvalidArgumentError("not a cool-ior reference"));
  }
  s.remove_prefix(kScheme.size());

  const std::size_t at = s.find('@');
  if (at == std::string_view::npos) {
    return Status(InvalidArgumentError("missing '@' in reference"));
  }
  ObjectRef ref;
  COOL_ASSIGN_OR_RETURN(ref.protocol, ProtocolFromName(s.substr(0, at)));
  s.remove_prefix(at + 1);

  const std::size_t colon = s.find(':');
  const std::size_t slash = s.find('/');
  if (colon == std::string_view::npos || slash == std::string_view::npos ||
      colon > slash) {
    return Status(InvalidArgumentError("malformed endpoint in reference"));
  }
  ref.endpoint.host = std::string(s.substr(0, colon));
  const std::string_view port_sv = s.substr(colon + 1, slash - colon - 1);
  unsigned port_val = 0;
  const auto [ptr, ec] = std::from_chars(
      port_sv.data(), port_sv.data() + port_sv.size(), port_val);
  if (ec != std::errc() || ptr != port_sv.data() + port_sv.size() ||
      port_val > 65535) {
    return Status(InvalidArgumentError("bad port in reference"));
  }
  ref.endpoint.port = static_cast<std::uint16_t>(port_val);
  s.remove_prefix(slash + 1);

  const std::size_t query = s.find("?type=");
  if (query == std::string_view::npos) {
    return Status(InvalidArgumentError("missing ?type= in reference"));
  }
  COOL_ASSIGN_OR_RETURN(ref.object_key, HexDecode(s.substr(0, query)));
  ref.repository_id = std::string(s.substr(query + 6));
  return ref;
}

}  // namespace cool::orb
