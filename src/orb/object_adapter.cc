#include "orb/object_adapter.h"

#include "common/buffer_pool.h"
#include "common/logging.h"

namespace cool::orb {

std::size_t ObjectAdapter::ShardIndex(
    const corba::OctetSeq& object_key) noexcept {
  // FNV-1a over the key bytes; cheap and well-spread for the short,
  // name-derived keys the adapter hands out.
  std::uint64_t h = 14695981039346656037ull;
  for (const corba::Octet b : object_key) {
    h ^= static_cast<std::uint64_t>(b);
    h *= 1099511628211ull;
  }
  return static_cast<std::size_t>(h % kShards);
}

Result<corba::OctetSeq> ObjectAdapter::Activate(
    const std::string& name, std::shared_ptr<Servant> servant) {
  if (name.empty()) {
    return Status(InvalidArgumentError("empty object name"));
  }
  if (servant == nullptr) {
    return Status(InvalidArgumentError("null servant"));
  }
  corba::OctetSeq key(name.begin(), name.end());
  Shard& shard = ShardFor(key);
  MutexLock lock(shard.mu);
  const auto [it, inserted] =
      shard.servants.try_emplace(key, std::move(servant));
  (void)it;
  if (!inserted) {
    return Status(AlreadyExistsError("object already active: " + name));
  }
  return key;
}

Status ObjectAdapter::Deactivate(const corba::OctetSeq& object_key) {
  Shard& shard = ShardFor(object_key);
  MutexLock lock(shard.mu);
  if (shard.servants.erase(object_key) == 0) {
    return NotFoundError("no active object for key");
  }
  return Status::Ok();
}

std::shared_ptr<Servant> ObjectAdapter::Find(
    const corba::OctetSeq& object_key) const {
  const Shard& shard = ShardFor(object_key);
  MutexLock lock(shard.mu);
  const auto it = shard.servants.find(object_key);
  return it != shard.servants.end() ? it->second : nullptr;
}

bool ObjectAdapter::Exists(const corba::OctetSeq& object_key) const {
  return Find(object_key) != nullptr;
}

std::size_t ObjectAdapter::active_count() const {
  std::size_t total = 0;
  for (const Shard& shard : shards_) {
    MutexLock lock(shard.mu);
    total += shard.servants.size();
  }
  return total;
}

std::uint64_t ObjectAdapter::qos_nacks() const {
  return qos_nacks_.load(std::memory_order_relaxed);
}

giop::GiopServer::DispatchResult ObjectAdapter::MakeSystemException(
    const Status& status, cdr::ByteOrder order) {
  giop::GiopServer::DispatchResult result;
  result.status = giop::ReplyStatus::kSystemException;
  cdr::Encoder enc(order, 0, BufferPool::Default().Lease());
  SystemException::FromStatus(status).Encode(enc);
  result.body = std::move(enc).TakeBuffer();
  return result;
}

giop::GiopServer::DispatchResult ObjectAdapter::Dispatch(
    const giop::RequestHeader& header, cdr::Decoder& args,
    cdr::ByteOrder order) {
  return DispatchImpl(header.object_key, header.operation, header.qos_params,
                      args, order);
}

giop::GiopServer::DispatchResult ObjectAdapter::DispatchLocal(
    const corba::OctetSeq& object_key, std::string_view operation,
    const std::vector<qos::QoSParameter>& qos_params, cdr::Decoder& args,
    cdr::ByteOrder order) {
  return DispatchImpl(object_key, operation, qos_params, args, order);
}

giop::GiopServer::DispatchResult ObjectAdapter::DispatchImpl(
    const corba::OctetSeq& object_key, std::string_view operation,
    const std::vector<qos::QoSParameter>& qos_params, cdr::Decoder& args,
    cdr::ByteOrder order) {
  std::shared_ptr<Servant> servant = Find(object_key);
  if (servant == nullptr) {
    return MakeSystemException(
        NotFoundError("no active object for request key"), order);
  }

  // Bilateral QoS negotiation (paper Fig. 3): evaluate qos_params against
  // the object implementation before performing the operation.
  if (!qos_params.empty()) {
    auto spec = qos::QoSSpec::FromParameters(qos_params);
    if (!spec.ok()) {
      return MakeSystemException(spec.status(), order);
    }
    const qos::NegotiationResult negotiated = servant->NegotiateQoS(*spec);
    if (!negotiated.accepted) {
      qos_nacks_.fetch_add(1, std::memory_order_relaxed);
      COOL_LOG(kInfo, "orb") << "QoS NACK for '" << operation
                             << "': " << negotiated.RejectionReason();
      return MakeSystemException(
          ResourceExhaustedError("requested QoS not supported: " +
                                 negotiated.RejectionReason()),
          order);
    }
  }

  // Pooled result-body encoder: the body rides to the reply send as the
  // gathered tail, then its storage returns to the pool.
  cdr::Encoder out(order, 0, BufferPool::Default().Lease());
  const DispatchOutcome outcome = servant->Dispatch(operation, args, out);
  if (!outcome.error.ok()) {
    return MakeSystemException(outcome.error, order);
  }
  giop::GiopServer::DispatchResult result;
  result.status = outcome.kind == DispatchOutcome::Kind::kUserException
                      ? giop::ReplyStatus::kUserException
                      : giop::ReplyStatus::kNoException;
  result.body = std::move(out).TakeBuffer();
  return result;
}

}  // namespace cool::orb
