// A minimal CORBA-Naming-style service: a well-known servant that maps
// names to stringified object references, so clients can bootstrap from a
// single reference instead of out-of-band IOR exchange. The service is an
// ordinary servant — its own invocations run through the full (QoS-capable)
// ORB path.
//
// Operations (all raise standard system exceptions on failure):
//   bind(name string, ior string)      — kAlreadyExists if taken
//   rebind(name string, ior string)    — bind-or-replace
//   resolve(name string) -> ior string — kNotFound if absent
//   unbind(name string)                — kNotFound if absent
//   list() -> sequence<string>         — bound names, sorted
#pragma once

#include <map>
#include <string>

#include "common/mutex.h"
#include "orb/object_ref.h"
#include "orb/servant.h"
#include "orb/stub.h"

namespace cool::orb {

class NamingServant : public Servant {
 public:
  static constexpr std::string_view kObjectName = "NameService";

  std::string_view repository_id() const override {
    return "IDL:cool/NamingContext:1.0";
  }

  DispatchOutcome Dispatch(std::string_view operation, cdr::Decoder& args,
                           cdr::Encoder& out) override;

  // Local (server-side) API; the remote operations call through these.
  Status Bind(const std::string& name, const std::string& ior);
  Status Rebind(const std::string& name, const std::string& ior);
  Result<std::string> Resolve(const std::string& name) const;
  Status Unbind(const std::string& name);
  std::vector<std::string> List() const;

 private:
  mutable Mutex mu_{LockRank::kOrb, "orb::NamingServant::mu_"};
  std::map<std::string, std::string> bindings_ COOL_GUARDED_BY(mu_);
};

// Client-side convenience wrapper around a stub bound to a NamingServant.
class NamingClient {
 public:
  // The naming service of `orb_ref_host` over the given transport; the
  // service is conventionally registered under NamingServant::kObjectName.
  NamingClient(ORB* orb, const sim::Address& naming_endpoint,
               Protocol protocol = Protocol::kTcp);

  Status Bind(const std::string& name, const ObjectRef& ref);
  Status Rebind(const std::string& name, const ObjectRef& ref);
  Result<ObjectRef> Resolve(const std::string& name);
  Status Unbind(const std::string& name);
  Result<std::vector<std::string>> List();

 private:
  Stub stub_;
};

}  // namespace cool::orb
