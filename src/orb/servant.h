// Servant: the object implementation base class. IDL skeletons (generated
// by our Chic, src/idl) derive from it and route decoded operations to user
// code; hand-written servants implement Dispatch directly.
#pragma once

#include <string_view>

#include "cdr/decoder.h"
#include "cdr/encoder.h"
#include "common/status.h"
#include "qos/negotiation.h"

namespace cool::orb {

// Outcome of one upcall.
struct DispatchOutcome {
  // kOk: results encoded; kUserException: IDL exception encoded; a non-OK
  // status maps to a CORBA system exception toward the client.
  enum class Kind { kOk, kUserException };
  Kind kind = Kind::kOk;
  Status error;  // non-OK forces SYSTEM_EXCEPTION regardless of kind

  static DispatchOutcome Ok() { return {}; }
  static DispatchOutcome UserException() {
    DispatchOutcome o;
    o.kind = Kind::kUserException;
    return o;
  }
  static DispatchOutcome Fail(Status status) {
    DispatchOutcome o;
    o.error = std::move(status);
    return o;
  }
};

class Servant {
 public:
  virtual ~Servant() = default;

  virtual std::string_view repository_id() const = 0;

  // Performs `operation`: decode arguments from `args`, encode results (or
  // a user exception body) into `out`. Unknown operations should return
  // Fail(UnsupportedError(...)), which reaches the client as BAD_OPERATION.
  virtual DispatchOutcome Dispatch(std::string_view operation,
                                   cdr::Decoder& args,
                                   cdr::Encoder& out) = 0;

  // Bilateral negotiation hook (paper Fig. 3): the object implementation
  // decides whether it can serve the invocation at the requested QoS. The
  // default accepts any request verbatim — an object that constrains QoS
  // (e.g. a maximum image resolution) overrides this.
  virtual qos::NegotiationResult NegotiateQoS(const qos::QoSSpec& requested) {
    qos::NegotiationResult r;
    r.accepted = true;
    r.granted = requested;
    for (const qos::QoSParameter& p : requested.parameters()) {
      qos::ParameterOutcome o;
      o.requested = p;
      o.granted = static_cast<corba::Long>(p.request_value);
      o.accepted = true;
      r.outcomes.push_back(o);
    }
    return r;
  }
};

}  // namespace cool::orb
