#include "orb/orb.h"

#include "common/deadlock.h"
#include "common/logging.h"

namespace cool::orb {

namespace {
// Upper bound on channels adopted per accept-train (one reactor wakeup can
// carry an arbitrary accept backlog; the cap bounds callback latency).
constexpr std::size_t kAcceptTrain = 64;
}  // namespace

ORB::ORB(sim::Network* net, std::string host)
    : ORB(net, std::move(host), Options{}) {}

ORB::ORB(sim::Network* net, std::string host, Options options)
    : net_(net),
      host_(std::move(host)),
      options_(std::move(options)),
      tcp_(net, sim::Address{host_, options_.tcp_port}),
      ipc_(net, sim::Address{host_, options_.ipc_port}),
      dacapo_(net, sim::Address{host_, options_.dacapo_port},
              options_.estimate, options_.resources) {}

ORB::~ORB() { Shutdown(); }

Result<ObjectRef> ORB::RegisterServant(const std::string& name,
                                       std::shared_ptr<Servant> servant,
                                       Protocol preferred) {
  const std::string repo_id(servant->repository_id());
  COOL_ASSIGN_OR_RETURN(corba::OctetSeq key,
                        adapter_.Activate(name, std::move(servant)));
  ObjectRef ref;
  ref.protocol = preferred;
  switch (preferred) {
    case Protocol::kTcp:
      ref.endpoint = sim::Address{host_, options_.tcp_port};
      break;
    case Protocol::kIpc:
      ref.endpoint = sim::Address{host_, options_.ipc_port};
      break;
    case Protocol::kDacapo:
      ref.endpoint = sim::Address{host_, options_.dacapo_port};
      break;
  }
  ref.object_key = std::move(key);
  ref.repository_id = repo_id;
  return ref;
}

Status ORB::Start() {
  if (running_.exchange(true)) {
    return FailedPreconditionError("ORB already running");
  }
  if (options_.giop_worker_threads > 0) {
    giop::DispatchPool::Options pool_options;
    pool_options.workers = options_.giop_worker_threads;
    pool_options.scheduler = options_.qos_scheduler;
    pool_options.class_weights = options_.dispatch_class_weights;
    pool_options.codel_enabled = options_.codel_enabled;
    pool_options.codel_target = options_.codel_target;
    pool_options.codel_interval = options_.codel_interval;
    dispatch_pool_ = std::make_unique<giop::DispatchPool>(pool_options);
  }
  if (options_.qos_egress) {
    transport::EgressScheduler::Options egress_options;
    egress_options.codel_enabled = options_.codel_enabled;
    egress_options.codel_target = options_.codel_target;
    egress_options.codel_interval = options_.codel_interval;
    egress_ = std::make_unique<transport::EgressScheduler>(egress_options);
  }
  transport::Reactor::Options reactor_options;
  reactor_options.workers = options_.reactor_threads;
  reactor_options.pin_workers = options_.pin_reactor_workers;
  reactor_ = std::make_unique<transport::Reactor>(reactor_options);

  // One immutable server config for every connection this ORB will accept.
  {
    giop::GiopServer::Options server_options;
    server_options.accept_qos_extension = options_.enable_qos_extension;
    server_options.pool = dispatch_pool_.get();
    // Upcalls run on the shared pool (or inline when it is disabled) —
    // never on per-connection worker threads.
    server_options.worker_threads = 0;
    server_options_ = std::make_shared<const giop::GiopServer::Options>(
        std::move(server_options));
  }

  COOL_RETURN_IF_ERROR(tcp_.Listen());
  COOL_RETURN_IF_ERROR(ipc_.Listen());
  COOL_RETURN_IF_ERROR(dacapo_.Listen());

  for (transport::ComManager* mgr :
       {static_cast<transport::ComManager*>(&tcp_),
        static_cast<transport::ComManager*>(&ipc_),
        static_cast<transport::ComManager*>(&dacapo_)}) {
    auto reg = reactor_->Add(
        [mgr](const sim::WaitSet& set, std::uint64_t token) {
          return mgr->RegisterAccept(set, token);
        },
        [this, mgr] { DrainAccept(mgr); });
    COOL_RETURN_IF_ERROR(reg.status());
    accept_regs_.push_back(*reg);
  }
  COOL_LOG(kInfo, "orb") << host_ << ": ORB running (tcp:"
                         << options_.tcp_port << " ipc:" << options_.ipc_port
                         << " dacapo:" << options_.dacapo_port << ", "
                         << reactor_->workers() << " reactor workers)";
  return Status::Ok();
}

void ORB::Shutdown() {
  if (shutdown_.exchange(true)) return;

  tcp_.Close();
  ipc_.Close();
  dacapo_.Close();
  // Barrier out the accept callbacks. No shard lock may be held here:
  // Remove() waits for a callback that may be blocked acquiring one. Once
  // these Removes return, no AdoptTrain is mid-flight, so the shard sweep
  // below observes every adopted connection.
  if (reactor_ != nullptr) {
    for (const std::uint64_t id : accept_regs_) reactor_->Remove(id);
  }
  accept_regs_.clear();

  std::vector<std::shared_ptr<Connection>> conns;
  for (ConnShard& shard : conn_shards_) {
    MutexLock lock(shard.mu);
    for (auto& [id, conn] : shard.conns) conns.push_back(std::move(conn));
    shard.conns.clear();
  }
  std::unordered_map<std::uint64_t, Thread> threads;
  {
    MutexLock lock(legacy_mu_);
    threads.swap(connection_threads_);
    finished_connections_.clear();
  }
  for (auto& conn : conns) {
    // Close first so a mid-callback drain (and any upcall mid-reply) fails
    // fast instead of blocking; then barrier out the drain callback; then
    // detach the server from the shared pool.
    conn->channel->Close();
    if (conn->rx_reg != 0 && reactor_ != nullptr) {
      reactor_->Remove(conn->rx_reg);
    }
    conn->server->Close();
  }
  for (auto& [id, t] : threads) {
    if (t.joinable()) t.join();
  }
  if (dispatch_pool_ != nullptr) dispatch_pool_->Close();
  if (egress_ != nullptr) egress_->Close();
  running_ = false;
}

void ORB::DrainAccept(transport::ComManager* manager) {
  std::vector<std::unique_ptr<transport::ComChannel>> train;
  for (;;) {
    if (shutdown_.load()) return;
    auto channel = manager->TryAcceptChannel();
    if (!channel.ok()) break;        // manager closed
    if (*channel == nullptr) break;  // nothing pending right now
    train.push_back(std::move(*channel));
    if (train.size() >= kAcceptTrain) {
      AdoptTrain(std::move(train));
      train.clear();
    }
  }
  if (!train.empty()) AdoptTrain(std::move(train));
}

void ORB::AdoptTrain(
    std::vector<std::unique_ptr<transport::ComChannel>> channels) {
  if (channels.empty()) return;
  ReapFinishedThreads();
  if (shutdown_.load()) {
    for (auto& channel : channels) channel->Close();
    return;
  }

  const std::size_t n = channels.size();
  std::vector<std::shared_ptr<Connection>> conns;
  conns.reserve(n);
  std::vector<transport::Reactor::Callback> cbs;
  cbs.reserve(n);
  for (auto& channel : channels) {
    auto conn = std::make_shared<Connection>();
    conn->channel = std::move(channel);
    if (egress_ != nullptr && conn->channel->protocol() == "dacapo") {
      static_cast<transport::DacapoComChannel*>(conn->channel.get())
          ->AttachEgress(egress_.get());
    }
    EmplaceServer(*conn);
    cbs.push_back([this, conn] { DrainConnection(conn); });
    conns.push_back(std::move(conn));
  }

  // Phase one: install the whole train's callbacks, one registration-map
  // lock per worker. Nothing fires until the matching Attach below, so the
  // per-connection bookkeeping (id, rx_reg, timers, shard entry) can be
  // published without racing the first readiness callback.
  const std::vector<std::uint64_t> ids = reactor_->AddBatch(std::move(cbs));
  const TimePoint now = Now();
  for (std::size_t i = 0; i < n; ++i) {
    conns[i]->id = ids[i];
    conns[i]->rx_reg = ids[i];
    conns[i]->last_activity = now;
    conns[i]->armed_deadline = now + options_.idle_timeout;
  }
  // Shard-grouped publish: the train's ids are contiguous, so walking in
  // strides of kConnShards groups same-shard inserts under one lock each.
  for (std::size_t s = 0; s < kConnShards && s < n; ++s) {
    ConnShard& shard = ShardFor(ids[s]);
    MutexLock lock(shard.mu);
    for (std::size_t i = s; i < n; i += kConnShards) {
      shard.conns[ids[i]] = conns[i];
    }
  }
  connections_accepted_.fetch_add(n, std::memory_order_relaxed);

  // Phase two: bind each readiness source and post the immediate probe.
  for (std::size_t i = 0; i < n; ++i) {
    const std::shared_ptr<Connection>& conn = conns[i];
    const bool attached = reactor_->Attach(
        ids[i], [raw = conn->channel.get()](const sim::WaitSet& set,
                                            std::uint64_t token) {
          return raw->RegisterRx(set, token);
        });
    if (attached) {
      if (options_.idle_timeout > Duration::zero()) {
        reactor_->ScheduleAt(ids[i], conn->armed_deadline);
      }
      continue;
    }
    // Transport without a non-blocking receive path: fall back to one
    // blocking serve thread for this connection (legacy model). Attach
    // already dropped the reactor registration.
    conn->rx_reg = 0;
    const std::uint64_t id = conn->id;
    MutexLock lock(legacy_mu_);
    connection_threads_.emplace(
        id, Thread([this, id, c = conn](std::stop_token) mutable {
          ServeConnection(id, std::move(c));
        }));
  }
}

void ORB::DrainConnection(const std::shared_ptr<Connection>& conn) {
  bool activity = false;
  for (;;) {
    Result<std::optional<ByteBuffer>> raw = conn->channel->TryReceiveMessage();
    if (!raw.ok()) {
      // Closed (local shutdown or peer hangup) or transport failure.
      COOL_LOG(kDebug, "orb") << host_
                              << ": connection ended: " << raw.status();
      FinishConnection(conn);
      return;
    }
    if (!raw->has_value()) break;  // drained; re-armed for next readiness
    activity = true;
    const Status handled = conn->server->HandleFrame(*std::move(*raw));
    if (handled.ok()) continue;
    if (handled.code() == ErrorCode::kProtocolError) {
      // Mirrors Serve(): protocol damage is reported but the connection
      // soldiers on, as GIOP prescribes after MessageError.
      COOL_LOG(kWarn, "giop") << "protocol error on connection: " << handled;
      continue;
    }
    COOL_LOG(kDebug, "orb") << host_ << ": connection ended: " << handled;
    FinishConnection(conn);
    return;
  }
  if (options_.idle_timeout <= Duration::zero()) return;

  // Idle-timeout bookkeeping. Safe without locks: this callback is the
  // only writer of these fields and never runs concurrently with itself
  // (reactor run-to-completion contract).
  const TimePoint now = Now();
  if (activity) {
    conn->last_activity = now;
  } else if (now - conn->last_activity >= options_.idle_timeout) {
    COOL_LOG(kDebug, "orb") << host_ << ": closing idle connection "
                            << conn->id;
    FinishConnection(conn);
    return;
  }
  // Lazy re-arm: only once the armed deadline has passed does a new heap
  // entry go in, so a busy connection keeps at most one pending timer
  // instead of one per received frame.
  if (now >= conn->armed_deadline) {
    conn->armed_deadline = conn->last_activity + options_.idle_timeout;
    reactor_->ScheduleAt(conn->id, conn->armed_deadline);
  }
}

void ORB::FinishConnection(const std::shared_ptr<Connection>& conn) {
  {
    ConnShard& shard = ShardFor(conn->id);
    MutexLock lock(shard.mu);
    shard.conns.erase(conn->id);
  }
  // Self-removal from inside the drain callback: unregisters without
  // waiting (idempotent against a concurrent Shutdown doing the same).
  reactor_->Remove(conn->rx_reg);
  // Bounded by design: server->Close() barriers this connection's in-flight
  // dispatch upcalls out of the shared pool (DetachRunner), a wait bounded
  // by the servant runtime on independent worker threads; it runs once per
  // connection close (DESIGN.md §11).
  deadlock::ScopedBlockingAllowed teardown_barrier;
  conn->channel->Close();
  conn->server->Close();
}

void ORB::EmplaceServer(Connection& conn) {
  conn.server.emplace(
      conn.channel.get(),
      [this](const giop::RequestHeader& header, cdr::Decoder& args) {
        return adapter_.Dispatch(header, args, cdr::NativeOrder());
      },
      server_options_);
  conn.server->SetLocator(
      [this](const corba::OctetSeq& key) { return adapter_.Exists(key); });
}

void ORB::ServeConnection(std::uint64_t id, std::shared_ptr<Connection> conn) {
  const Status end = conn->server->Serve();
  COOL_LOG(kDebug, "orb") << host_ << ": connection ended: " << end;

  {
    ConnShard& shard = ShardFor(id);
    MutexLock lock(shard.mu);
    shard.conns.erase(id);
  }
  // Eager reap: join earlier finished loops before publishing our own id
  // (never our own thread — it is not in the list yet), so dead threads
  // never accumulate waiting for the next accept. At most the final loop
  // lingers until adopt or shutdown joins it.
  ReapFinishedThreads();
  MutexLock lock(legacy_mu_);
  finished_connections_.push_back(id);
}

void ORB::ReapFinishedThreads() {
  // Joins run outside the lock: a finishing loop's tail takes legacy_mu_
  // to publish its id.
  std::vector<Thread> reaped;
  {
    MutexLock lock(legacy_mu_);
    for (const std::uint64_t id : finished_connections_) {
      const auto it = connection_threads_.find(id);
      if (it != connection_threads_.end()) {
        reaped.push_back(std::move(it->second));
        connection_threads_.erase(it);
      }
    }
    finished_connections_.clear();
  }
  for (auto& t : reaped) {
    if (t.joinable()) t.join();
  }
}

std::size_t ORB::connections_live() const {
  std::size_t total = 0;
  for (const ConnShard& shard : conn_shards_) {
    MutexLock lock(shard.mu);
    total += shard.conns.size();
  }
  return total;
}

Result<std::unique_ptr<transport::ComChannel>> ORB::OpenChannel(
    const ObjectRef& ref, const qos::QoSSpec& qos) {
  switch (ref.protocol) {
    case Protocol::kTcp:
      return tcp_.OpenChannel(ref.endpoint, qos);
    case Protocol::kIpc:
      return ipc_.OpenChannel(ref.endpoint, qos);
    case Protocol::kDacapo: {
      auto channel = dacapo_.OpenChannel(ref.endpoint, qos);
      if (channel.ok() && egress_ != nullptr) {
        // Client-side sends share the link's egress arbitration with the
        // server-side replies and every other binding of this endsystem.
        static_cast<transport::DacapoComChannel*>(channel->get())
            ->AttachEgress(egress_.get());
      }
      return channel;
    }
  }
  return Status(InternalError("unknown protocol"));
}

bool ORB::IsLocal(const ObjectRef& ref) const {
  return ref.endpoint.host == host_ && adapter_.Exists(ref.object_key);
}

std::string ORB::DescribeDispatchStats() const {
  std::string out;
  if (dispatch_pool_ != nullptr) out = dispatch_pool_->DescribeStats();
  if (egress_ != nullptr) {
    if (!out.empty()) out += "\n";
    out += egress_->DescribeStats();
  }
  return out;
}

}  // namespace cool::orb
