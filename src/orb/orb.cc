#include "orb/orb.h"

#include "common/logging.h"

namespace cool::orb {

ORB::ORB(sim::Network* net, std::string host)
    : ORB(net, std::move(host), Options{}) {}

ORB::ORB(sim::Network* net, std::string host, Options options)
    : net_(net),
      host_(std::move(host)),
      options_(std::move(options)),
      tcp_(net, sim::Address{host_, options_.tcp_port}),
      ipc_(net, sim::Address{host_, options_.ipc_port}),
      dacapo_(net, sim::Address{host_, options_.dacapo_port},
              options_.estimate, options_.resources) {}

ORB::~ORB() { Shutdown(); }

Result<ObjectRef> ORB::RegisterServant(const std::string& name,
                                       std::shared_ptr<Servant> servant,
                                       Protocol preferred) {
  const std::string repo_id(servant->repository_id());
  COOL_ASSIGN_OR_RETURN(corba::OctetSeq key,
                        adapter_.Activate(name, std::move(servant)));
  ObjectRef ref;
  ref.protocol = preferred;
  switch (preferred) {
    case Protocol::kTcp:
      ref.endpoint = sim::Address{host_, options_.tcp_port};
      break;
    case Protocol::kIpc:
      ref.endpoint = sim::Address{host_, options_.ipc_port};
      break;
    case Protocol::kDacapo:
      ref.endpoint = sim::Address{host_, options_.dacapo_port};
      break;
  }
  ref.object_key = std::move(key);
  ref.repository_id = repo_id;
  return ref;
}

Status ORB::Start() {
  if (running_.exchange(true)) {
    return FailedPreconditionError("ORB already running");
  }
  COOL_RETURN_IF_ERROR(tcp_.Listen());
  COOL_RETURN_IF_ERROR(ipc_.Listen());
  COOL_RETURN_IF_ERROR(dacapo_.Listen());

  for (transport::ComManager* mgr :
       {static_cast<transport::ComManager*>(&tcp_),
        static_cast<transport::ComManager*>(&ipc_),
        static_cast<transport::ComManager*>(&dacapo_)}) {
    accept_threads_.emplace_back(
        [this, mgr](std::stop_token st) { AcceptLoop(mgr, st); });
  }
  COOL_LOG(kInfo, "orb") << host_ << ": ORB running (tcp:"
                         << options_.tcp_port << " ipc:" << options_.ipc_port
                         << " dacapo:" << options_.dacapo_port << ")";
  return Status::Ok();
}

void ORB::Shutdown() {
  if (shutdown_.exchange(true)) return;

  tcp_.Close();
  ipc_.Close();
  dacapo_.Close();
  for (auto& t : accept_threads_) {
    t.request_stop();
    if (t.joinable()) t.join();
  }
  accept_threads_.clear();

  std::unordered_map<std::uint64_t, Thread> connections;
  {
    MutexLock lock(conn_mu_);
    for (auto& [id, channel] : live_channels_) channel->Close();
    connections.swap(connection_threads_);
  }
  for (auto& [id, t] : connections) {
    if (t.joinable()) t.join();
  }
  running_ = false;
}

void ORB::AcceptLoop(transport::ComManager* manager, std::stop_token stop) {
  while (!stop.stop_requested()) {
    auto channel = manager->AcceptChannel();
    if (!channel.ok()) return;  // manager closed

    // Reap threads of connections that have since ended, outside the lock
    // (join must not run under conn_mu_ — ServeConnection takes it last).
    std::vector<Thread> reaped;
    {
      MutexLock lock(conn_mu_);
      if (shutdown_.load()) return;
      for (const std::uint64_t id : finished_connections_) {
        const auto it = connection_threads_.find(id);
        if (it != connection_threads_.end()) {
          reaped.push_back(std::move(it->second));
          connection_threads_.erase(it);
        }
      }
      finished_connections_.clear();
    }
    for (auto& t : reaped) {
      if (t.joinable()) t.join();
    }

    MutexLock lock(conn_mu_);
    if (shutdown_.load()) return;
    ++connections_accepted_;
    const std::uint64_t id = next_conn_id_++;
    auto owned = std::move(channel).value();
    connection_threads_.emplace(
        id, Thread([this, id, ch = std::move(owned)](
                             std::stop_token) mutable {
          ServeConnection(id, std::move(ch));
        }));
  }
}

void ORB::ServeConnection(std::uint64_t id,
                          std::unique_ptr<transport::ComChannel> channel) {
  {
    MutexLock lock(conn_mu_);
    live_channels_[id] = channel.get();
  }

  giop::GiopServer::Options server_options;
  server_options.accept_qos_extension = options_.enable_qos_extension;
  server_options.worker_threads = options_.giop_worker_threads;
  giop::GiopServer server(
      channel.get(),
      [this](const giop::RequestHeader& header, cdr::Decoder& args) {
        return adapter_.Dispatch(header, args, cdr::NativeOrder());
      },
      server_options);
  server.SetLocator(
      [this](const corba::OctetSeq& key) { return adapter_.Exists(key); });

  const Status end = server.Serve();
  COOL_LOG(kDebug, "orb") << host_ << ": connection ended: " << end;

  MutexLock lock(conn_mu_);
  live_channels_.erase(id);
  finished_connections_.push_back(id);
}

Result<std::unique_ptr<transport::ComChannel>> ORB::OpenChannel(
    const ObjectRef& ref, const qos::QoSSpec& qos) {
  switch (ref.protocol) {
    case Protocol::kTcp:
      return tcp_.OpenChannel(ref.endpoint, qos);
    case Protocol::kIpc:
      return ipc_.OpenChannel(ref.endpoint, qos);
    case Protocol::kDacapo:
      return dacapo_.OpenChannel(ref.endpoint, qos);
  }
  return Status(InternalError("unknown protocol"));
}

bool ORB::IsLocal(const ObjectRef& ref) const {
  return ref.endpoint.host == host_ && adapter_.Exists(ref.object_key);
}

std::uint64_t ORB::connections_accepted() const {
  MutexLock lock(conn_mu_);
  return connections_accepted_;
}

}  // namespace cool::orb
