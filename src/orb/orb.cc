#include "orb/orb.h"

#include "common/deadlock.h"
#include "common/logging.h"

namespace cool::orb {

ORB::ORB(sim::Network* net, std::string host)
    : ORB(net, std::move(host), Options{}) {}

ORB::ORB(sim::Network* net, std::string host, Options options)
    : net_(net),
      host_(std::move(host)),
      options_(std::move(options)),
      tcp_(net, sim::Address{host_, options_.tcp_port}),
      ipc_(net, sim::Address{host_, options_.ipc_port}),
      dacapo_(net, sim::Address{host_, options_.dacapo_port},
              options_.estimate, options_.resources) {}

ORB::~ORB() { Shutdown(); }

Result<ObjectRef> ORB::RegisterServant(const std::string& name,
                                       std::shared_ptr<Servant> servant,
                                       Protocol preferred) {
  const std::string repo_id(servant->repository_id());
  COOL_ASSIGN_OR_RETURN(corba::OctetSeq key,
                        adapter_.Activate(name, std::move(servant)));
  ObjectRef ref;
  ref.protocol = preferred;
  switch (preferred) {
    case Protocol::kTcp:
      ref.endpoint = sim::Address{host_, options_.tcp_port};
      break;
    case Protocol::kIpc:
      ref.endpoint = sim::Address{host_, options_.ipc_port};
      break;
    case Protocol::kDacapo:
      ref.endpoint = sim::Address{host_, options_.dacapo_port};
      break;
  }
  ref.object_key = std::move(key);
  ref.repository_id = repo_id;
  return ref;
}

Status ORB::Start() {
  if (running_.exchange(true)) {
    return FailedPreconditionError("ORB already running");
  }
  if (options_.giop_worker_threads > 0) {
    giop::DispatchPool::Options pool_options;
    pool_options.workers = options_.giop_worker_threads;
    pool_options.scheduler = options_.qos_scheduler;
    pool_options.class_weights = options_.dispatch_class_weights;
    pool_options.codel_enabled = options_.codel_enabled;
    pool_options.codel_target = options_.codel_target;
    pool_options.codel_interval = options_.codel_interval;
    dispatch_pool_ = std::make_unique<giop::DispatchPool>(pool_options);
  }
  if (options_.qos_egress) {
    transport::EgressScheduler::Options egress_options;
    egress_options.codel_enabled = options_.codel_enabled;
    egress_options.codel_target = options_.codel_target;
    egress_options.codel_interval = options_.codel_interval;
    egress_ = std::make_unique<transport::EgressScheduler>(egress_options);
  }
  reactor_ = std::make_unique<transport::Reactor>(options_.reactor_threads);

  COOL_RETURN_IF_ERROR(tcp_.Listen());
  COOL_RETURN_IF_ERROR(ipc_.Listen());
  COOL_RETURN_IF_ERROR(dacapo_.Listen());

  for (transport::ComManager* mgr :
       {static_cast<transport::ComManager*>(&tcp_),
        static_cast<transport::ComManager*>(&ipc_),
        static_cast<transport::ComManager*>(&dacapo_)}) {
    auto reg = reactor_->Add(
        [mgr](const sim::WaitSet& set, std::uint64_t token) {
          return mgr->RegisterAccept(set, token);
        },
        [this, mgr] { DrainAccept(mgr); });
    COOL_RETURN_IF_ERROR(reg.status());
    accept_regs_.push_back(*reg);
  }
  COOL_LOG(kInfo, "orb") << host_ << ": ORB running (tcp:"
                         << options_.tcp_port << " ipc:" << options_.ipc_port
                         << " dacapo:" << options_.dacapo_port << ", "
                         << reactor_->workers() << " reactor workers)";
  return Status::Ok();
}

void ORB::Shutdown() {
  if (shutdown_.exchange(true)) return;

  tcp_.Close();
  ipc_.Close();
  dacapo_.Close();
  // Barrier out the accept callbacks. conn_mu_ must not be held here:
  // Remove() waits for a callback that may be blocked acquiring it.
  if (reactor_ != nullptr) {
    for (const std::uint64_t id : accept_regs_) reactor_->Remove(id);
  }
  accept_regs_.clear();

  std::unordered_map<std::uint64_t, std::shared_ptr<Connection>> conns;
  std::unordered_map<std::uint64_t, Thread> threads;
  {
    MutexLock lock(conn_mu_);
    conns.swap(connections_);
    threads.swap(connection_threads_);
  }
  for (auto& [id, conn] : conns) {
    // Close first so a mid-callback drain (and any upcall mid-reply) fails
    // fast instead of blocking; then barrier out the drain callback; then
    // detach the server from the shared pool.
    conn->channel->Close();
    if (conn->rx_reg != 0 && reactor_ != nullptr) {
      reactor_->Remove(conn->rx_reg);
    }
    conn->server->Close();
  }
  for (auto& [id, t] : threads) {
    if (t.joinable()) t.join();
  }
  if (dispatch_pool_ != nullptr) dispatch_pool_->Close();
  if (egress_ != nullptr) egress_->Close();
  running_ = false;
}

void ORB::DrainAccept(transport::ComManager* manager) {
  for (;;) {
    if (shutdown_.load()) return;
    auto channel = manager->TryAcceptChannel();
    if (!channel.ok()) return;       // manager closed
    if (*channel == nullptr) return;  // nothing pending right now
    AdoptConnection(std::move(*channel));
  }
}

void ORB::AdoptConnection(std::unique_ptr<transport::ComChannel> channel) {
  // Reap legacy serve threads of connections that have since ended,
  // outside the lock (join must not run under conn_mu_ — ServeConnection
  // takes it last).
  std::vector<Thread> reaped;
  {
    MutexLock lock(conn_mu_);
    for (const std::uint64_t id : finished_connections_) {
      const auto it = connection_threads_.find(id);
      if (it != connection_threads_.end()) {
        reaped.push_back(std::move(it->second));
        connection_threads_.erase(it);
      }
    }
    finished_connections_.clear();
  }
  for (auto& t : reaped) {
    if (t.joinable()) t.join();
  }

  auto conn = std::make_shared<Connection>();
  conn->channel = std::move(channel);
  if (egress_ != nullptr && conn->channel->protocol() == "dacapo") {
    static_cast<transport::DacapoComChannel*>(conn->channel.get())
        ->AttachEgress(egress_.get());
  }
  conn->server = MakeServer(conn->channel.get());

  MutexLock lock(conn_mu_);
  if (shutdown_.load()) {
    conn->channel->Close();
    conn->server->Close();
    return;
  }
  ++connections_accepted_;
  conn->id = next_conn_id_++;

  // Registering under conn_mu_ is safe: workers hold no reactor lock while
  // running callbacks, so a callback blocked on conn_mu_ cannot hold up
  // Add(). The registration's closure keeps the Connection alive for as
  // long as the reactor may still invoke it.
  auto reg = reactor_->Add(
      [raw = conn->channel.get()](const sim::WaitSet& set,
                                  std::uint64_t token) {
        return raw->RegisterRx(set, token);
      },
      [this, conn] { DrainConnection(conn); });
  if (reg.ok()) {
    conn->rx_reg = *reg;
    connections_[conn->id] = conn;
    return;
  }
  // Transport without a non-blocking receive path: fall back to one
  // blocking serve thread for this connection (legacy model).
  connections_[conn->id] = conn;
  const std::uint64_t id = conn->id;
  connection_threads_.emplace(
      id, Thread([this, id, c = std::move(conn)](std::stop_token) mutable {
        ServeConnection(id, std::move(c));
      }));
}

void ORB::DrainConnection(const std::shared_ptr<Connection>& conn) {
  for (;;) {
    Result<std::optional<ByteBuffer>> raw = conn->channel->TryReceiveMessage();
    if (!raw.ok()) {
      // Closed (local shutdown or peer hangup) or transport failure.
      COOL_LOG(kDebug, "orb") << host_
                              << ": connection ended: " << raw.status();
      FinishConnection(conn);
      return;
    }
    if (!raw->has_value()) return;  // drained; re-armed for next readiness
    const Status handled = conn->server->HandleFrame(*std::move(*raw));
    if (handled.ok()) continue;
    if (handled.code() == ErrorCode::kProtocolError) {
      // Mirrors Serve(): protocol damage is reported but the connection
      // soldiers on, as GIOP prescribes after MessageError.
      COOL_LOG(kWarn, "giop") << "protocol error on connection: " << handled;
      continue;
    }
    COOL_LOG(kDebug, "orb") << host_ << ": connection ended: " << handled;
    FinishConnection(conn);
    return;
  }
}

void ORB::FinishConnection(const std::shared_ptr<Connection>& conn) {
  {
    MutexLock lock(conn_mu_);
    connections_.erase(conn->id);
  }
  // Self-removal from inside the drain callback: unregisters without
  // waiting (idempotent against a concurrent Shutdown doing the same).
  reactor_->Remove(conn->rx_reg);
  // Bounded by design: server->Close() barriers this connection's in-flight
  // dispatch upcalls out of the shared pool (DetachRunner), a wait bounded
  // by the servant runtime on independent worker threads; it runs once per
  // connection close (DESIGN.md §11).
  deadlock::ScopedBlockingAllowed teardown_barrier;
  conn->channel->Close();
  conn->server->Close();
}

std::unique_ptr<giop::GiopServer> ORB::MakeServer(
    transport::ComChannel* channel) {
  giop::GiopServer::Options server_options;
  server_options.accept_qos_extension = options_.enable_qos_extension;
  server_options.pool = dispatch_pool_.get();
  // Upcalls run on the shared pool (or inline when it is disabled) —
  // never on per-connection worker threads.
  server_options.worker_threads = 0;
  auto server = std::make_unique<giop::GiopServer>(
      channel,
      [this](const giop::RequestHeader& header, cdr::Decoder& args) {
        return adapter_.Dispatch(header, args, cdr::NativeOrder());
      },
      server_options);
  server->SetLocator(
      [this](const corba::OctetSeq& key) { return adapter_.Exists(key); });
  return server;
}

void ORB::ServeConnection(std::uint64_t id, std::shared_ptr<Connection> conn) {
  const Status end = conn->server->Serve();
  COOL_LOG(kDebug, "orb") << host_ << ": connection ended: " << end;

  MutexLock lock(conn_mu_);
  connections_.erase(id);
  finished_connections_.push_back(id);
}

Result<std::unique_ptr<transport::ComChannel>> ORB::OpenChannel(
    const ObjectRef& ref, const qos::QoSSpec& qos) {
  switch (ref.protocol) {
    case Protocol::kTcp:
      return tcp_.OpenChannel(ref.endpoint, qos);
    case Protocol::kIpc:
      return ipc_.OpenChannel(ref.endpoint, qos);
    case Protocol::kDacapo: {
      auto channel = dacapo_.OpenChannel(ref.endpoint, qos);
      if (channel.ok() && egress_ != nullptr) {
        // Client-side sends share the link's egress arbitration with the
        // server-side replies and every other binding of this endsystem.
        static_cast<transport::DacapoComChannel*>(channel->get())
            ->AttachEgress(egress_.get());
      }
      return channel;
    }
  }
  return Status(InternalError("unknown protocol"));
}

bool ORB::IsLocal(const ObjectRef& ref) const {
  return ref.endpoint.host == host_ && adapter_.Exists(ref.object_key);
}

std::uint64_t ORB::connections_accepted() const {
  MutexLock lock(conn_mu_);
  return connections_accepted_;
}

std::string ORB::DescribeDispatchStats() const {
  std::string out;
  if (dispatch_pool_ != nullptr) out = dispatch_pool_->DescribeStats();
  if (egress_ != nullptr) {
    if (!out.empty()) out += "\n";
    out += egress_->DescribeStats();
  }
  return out;
}

}  // namespace cool::orb
