#include "stream/flow.h"

#include <algorithm>

#include "common/logging.h"

namespace cool::stream {

void FlowSpec::Encode(cdr::Encoder& enc) const {
  enc.PutDouble(frame_rate_hz);
  enc.PutULong(static_cast<corba::ULong>(frame_bytes));
  qos::EncodeQoSParameterSeq(enc, qos.parameters());
}

Result<FlowSpec> FlowSpec::Decode(cdr::Decoder& dec) {
  FlowSpec spec;
  COOL_ASSIGN_OR_RETURN(spec.frame_rate_hz, dec.GetDouble());
  if (!(spec.frame_rate_hz > 0) || spec.frame_rate_hz > 100000) {
    return Status(ProtocolError("implausible frame rate"));
  }
  COOL_ASSIGN_OR_RETURN(corba::ULong bytes, dec.GetULong());
  spec.frame_bytes = bytes;
  COOL_ASSIGN_OR_RETURN(auto params, qos::DecodeQoSParameterSeq(dec));
  COOL_ASSIGN_OR_RETURN(spec.qos, qos::QoSSpec::FromParameters(params));
  return spec;
}

void FlowStats::EncodeStats(cdr::Encoder& enc) const {
  enc.PutULongLong(frames_received);
  enc.PutULongLong(frames_lost);
  enc.PutULongLong(frames_reordered);
  enc.PutDouble(measured_fps);
  enc.PutDouble(throughput_kbps);
  enc.PutDouble(mean_jitter_us);
  enc.PutDouble(p95_jitter_us);
}

Result<FlowStats> FlowStats::DecodeStats(cdr::Decoder& dec) {
  FlowStats s;
  COOL_ASSIGN_OR_RETURN(s.frames_received, dec.GetULongLong());
  COOL_ASSIGN_OR_RETURN(s.frames_lost, dec.GetULongLong());
  COOL_ASSIGN_OR_RETURN(s.frames_reordered, dec.GetULongLong());
  COOL_ASSIGN_OR_RETURN(s.measured_fps, dec.GetDouble());
  COOL_ASSIGN_OR_RETURN(s.throughput_kbps, dec.GetDouble());
  COOL_ASSIGN_OR_RETURN(s.mean_jitter_us, dec.GetDouble());
  COOL_ASSIGN_OR_RETURN(s.p95_jitter_us, dec.GetDouble());
  return s;
}

// --- StreamSource -------------------------------------------------------------

Status StreamSource::Start() {
  if (running_.exchange(true)) {
    return FailedPreconditionError("source already started");
  }
  if (spec_.frame_bytes < kFrameHeaderBytes) {
    running_ = false;
    return InvalidArgumentError("frame smaller than its header");
  }
  thread_ = Thread([this](std::stop_token st) { Run(st); });
  return Status::Ok();
}

void StreamSource::Stop() {
  if (!running_.exchange(false)) return;
  thread_.request_stop();
  if (thread_.joinable()) thread_.join();
}

void StreamSource::Run(std::stop_token stop) {
  std::vector<std::uint8_t> frame(spec_.frame_bytes);
  for (std::size_t i = kFrameHeaderBytes; i < frame.size(); ++i) {
    frame[i] = static_cast<std::uint8_t>(i * 17);
  }
  const Duration period = spec_.FramePeriod();
  TimePoint deadline = Now();
  std::uint32_t seq = 0;

  while (!stop.stop_requested()) {
    deadline += period;
    const TimePoint now = Now();
    if (now < deadline) {
      PreciseSleep(deadline - now);
    } else if (now - deadline > period) {
      // Fell more than a frame behind (backpressure): skip frames rather
      // than letting the clock drift — a live source cannot buffer the
      // past.
      const auto behind = static_cast<std::uint64_t>((now - deadline) /
                                                     period);
      frames_skipped_ += behind;
      seq += static_cast<std::uint32_t>(behind);
      deadline += period * static_cast<long>(behind);
    }

    frame[0] = static_cast<std::uint8_t>(seq);
    frame[1] = static_cast<std::uint8_t>(seq >> 8);
    frame[2] = static_cast<std::uint8_t>(seq >> 16);
    frame[3] = static_cast<std::uint8_t>(seq >> 24);
    ++seq;
    if (Status s = session_->Send(frame); !s.ok()) {
      COOL_LOG(kDebug, "stream") << "source send failed: " << s;
      return;
    }
    ++frames_sent_;
  }
}

// --- StreamSink ----------------------------------------------------------------

Status StreamSink::Start() {
  if (running_.exchange(true)) {
    return FailedPreconditionError("sink already started");
  }
  thread_ = Thread([this](std::stop_token st) { Run(st); });
  return Status::Ok();
}

void StreamSink::Stop() {
  if (!running_.exchange(false)) return;
  thread_.request_stop();
  if (thread_.joinable()) thread_.join();
  if (owned_session_ != nullptr) owned_session_->Close();
}

void StreamSink::Run(std::stop_token stop) {
  while (!stop.stop_requested()) {
    // Zero-copy receive: the frame is inspected in arena packet memory and
    // released at the end of the iteration; only the counters survive.
    auto frame = session_->ReceivePacket(milliseconds(100));
    if (!frame.ok()) {
      if (frame.status().code() == ErrorCode::kDeadlineExceeded) continue;
      return;  // session closed
    }
    const auto data = frame->data();
    if (data.size() < kFrameHeaderBytes) continue;
    const std::uint32_t seq = static_cast<std::uint32_t>(data[0]) |
                              static_cast<std::uint32_t>(data[1]) << 8 |
                              static_cast<std::uint32_t>(data[2]) << 16 |
                              static_cast<std::uint32_t>(data[3]) << 24;
    const TimePoint now = Now();

    MutexLock lock(mu_);
    if (frames_received_ == 0) {
      first_rx_ = now;
    } else {
      interarrival_us_.push_back(ToMicros(now - last_rx_));
    }
    last_rx_ = now;
    ++frames_received_;
    bytes_received_ += data.size();
    if (seq > next_seq_) {
      frames_lost_ += seq - next_seq_;
      next_seq_ = seq + 1;
    } else if (seq < next_seq_) {
      ++frames_reordered_;
      if (frames_lost_ > 0) --frames_lost_;  // late, not lost after all
    } else {
      next_seq_ = seq + 1;
    }
  }
}

FlowStats StreamSink::stats() const {
  MutexLock lock(mu_);
  FlowStats s;
  s.frames_received = frames_received_;
  s.frames_lost = frames_lost_;
  s.frames_reordered = frames_reordered_;
  if (frames_received_ >= 2) {
    const double span_s = ToSeconds(last_rx_ - first_rx_);
    if (span_s > 0) {
      s.measured_fps = static_cast<double>(frames_received_ - 1) / span_s;
      s.throughput_kbps =
          static_cast<double>(bytes_received_) * 8.0 / span_s / 1000.0;
    }
    // Jitter: deviation of inter-arrival times from their own mean (the
    // mean is the effective frame period).
    std::vector<double> deltas = interarrival_us_;
    double mean_gap = 0;
    for (double d : deltas) mean_gap += d;
    mean_gap /= static_cast<double>(deltas.size());
    for (double& d : deltas) d = std::abs(d - mean_gap);
    std::sort(deltas.begin(), deltas.end());
    double sum = 0;
    for (double d : deltas) sum += d;
    s.mean_jitter_us = sum / static_cast<double>(deltas.size());
    s.p95_jitter_us = deltas[deltas.size() * 95 / 100];
  }
  return s;
}

}  // namespace cool::stream
