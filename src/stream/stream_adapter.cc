#include "stream/stream_adapter.h"

#include <atomic>

#include "common/logging.h"

namespace cool::stream {

namespace {

std::uint16_t AllocFlowPort() {
  static std::atomic<std::uint16_t> next{52000};
  return next.fetch_add(1);
}

// The channel options both ends derive from a flow spec.
dacapo::ChannelOptions FlowChannelOptions(const FlowSpec& spec,
                                          dacapo::ModuleGraphSpec graph) {
  dacapo::ChannelOptions options;
  // Media flows ride the raw datagram service: loss and reordering are
  // visible unless the configured graph handles them — that is the point.
  options.transport = dacapo::ChannelOptions::Transport::kDatagram;
  options.graph = std::move(graph);
  options.packet_capacity =
      std::max<std::size_t>(spec.frame_bytes + 64, 4 * 1024);
  options.arena_packets = 256;
  return options;
}

}  // namespace

StreamService::StreamService(sim::Network* net, std::string host,
                             dacapo::NetworkEstimate estimate,
                             qos::Capability flow_capability,
                             dacapo::ResourceManager* resources)
    : net_(net),
      host_(std::move(host)),
      estimate_(estimate),
      flow_capability_(std::move(flow_capability)),
      resources_(resources) {}

StreamService::~StreamService() {
  std::map<corba::ULong, std::shared_ptr<Flow>> flows;
  {
    MutexLock lock(mu_);
    flows.swap(flows_);
  }
  for (auto& [id, flow] : flows) {
    flow->acceptor->Close();
    if (flow->accept_thread.joinable()) flow->accept_thread.join();
    MutexLock lock(flow->mu);
    if (flow->sink != nullptr) flow->sink->Stop();
  }
}

std::size_t StreamService::active_flows() const {
  MutexLock lock(mu_);
  return flows_.size();
}

Result<FlowStats> StreamService::StatsFor(corba::ULong flow_id) const {
  std::shared_ptr<Flow> flow;
  {
    MutexLock lock(mu_);
    const auto it = flows_.find(flow_id);
    if (it == flows_.end()) {
      return Status(NotFoundError("unknown flow id"));
    }
    flow = it->second;
  }
  MutexLock lock(flow->mu);
  if (flow->sink == nullptr) {
    return Status(UnavailableError("flow data session not yet connected"));
  }
  return flow->sink->stats();
}

orb::DispatchOutcome StreamService::Dispatch(std::string_view operation,
                                             cdr::Decoder& args,
                                             cdr::Encoder& out) {
  if (operation == "open_flow") return OpenFlow(args, out);
  if (operation == "flow_stats") return FlowStatsOp(args, out);
  if (operation == "close_flow") return CloseFlow(args, out);
  return orb::DispatchOutcome::Fail(
      UnsupportedError("unknown operation on StreamService"));
}

orb::DispatchOutcome StreamService::OpenFlow(cdr::Decoder& args,
                                             cdr::Encoder& out) {
  auto spec = FlowSpec::Decode(args);
  if (!spec.ok()) {
    return orb::DispatchOutcome::Fail(
        InvalidArgumentError(spec.status().message()));
  }

  // Bilateral negotiation of the *flow* QoS (per-flow QoS specification,
  // the extension the paper's §7 sketches). The nominal media rate is
  // negotiated as a throughput demand even when the caller did not spell
  // it out.
  qos::QoSSpec negotiable = spec->qos;
  if (negotiable.Find(qos::ParamType::kThroughputKbps) == nullptr) {
    negotiable.Set(
        qos::RequireThroughputKbps(spec->NominalKbps(),
                                   static_cast<corba::Long>(
                                       spec->NominalKbps())));
  }
  const qos::NegotiationResult negotiated =
      qos::Negotiate(negotiable, flow_capability_);
  if (!negotiated.accepted) {
    return orb::DispatchOutcome::Fail(ResourceExhaustedError(
        "flow QoS not supported: " + negotiated.RejectionReason()));
  }

  dacapo::ResourceManager::Reservation reservation;
  if (resources_ != nullptr) {
    qos::ProtocolRequirements req;
    req.min_throughput_kbps = spec->NominalKbps();
    auto admitted = resources_->Admit(req, spec->frame_bytes * 256);
    if (!admitted.ok()) {
      return orb::DispatchOutcome::Fail(admitted.status());
    }
    reservation = std::move(admitted).value();
  }

  const std::uint16_t port = AllocFlowPort();
  auto flow = std::make_shared<Flow>();
  flow->spec = *spec;
  flow->reservation = std::move(reservation);
  flow->acceptor = std::make_unique<dacapo::Acceptor>(
      net_, sim::Address{host_, port});
  if (Status s = flow->acceptor->Listen(); !s.ok()) {
    return orb::DispatchOutcome::Fail(s);
  }
  // One accept per flow; the sink starts as soon as the peer connects.
  flow->accept_thread = Thread([flow](std::stop_token) {
    auto session =
        flow->acceptor->Accept(dacapo::AppAModule::DeliveryMode::kQueue);
    if (!session.ok()) return;  // service shut down before the peer came
    auto sink = std::make_unique<StreamSink>(std::move(session).value());
    if (!sink->Start().ok()) return;
    MutexLock lock(flow->mu);
    flow->sink = std::move(sink);
  });

  corba::ULong flow_id = 0;
  {
    MutexLock lock(mu_);
    flow_id = next_flow_id_++;
    flows_[flow_id] = flow;
  }
  COOL_LOG(kInfo, "stream") << "flow " << flow_id << " opened at " << host_
                            << ":" << port << " ("
                            << spec->frame_rate_hz << " fps x "
                            << spec->frame_bytes << " B)";

  out.PutULong(flow_id);
  out.PutString(host_);
  out.PutULong(port);
  return orb::DispatchOutcome::Ok();
}

orb::DispatchOutcome StreamService::FlowStatsOp(cdr::Decoder& args,
                                                cdr::Encoder& out) {
  auto flow_id = args.GetULong();
  if (!flow_id.ok()) {
    return orb::DispatchOutcome::Fail(InvalidArgumentError("bad flow id"));
  }
  auto stats = StatsFor(*flow_id);
  if (!stats.ok()) return orb::DispatchOutcome::Fail(stats.status());
  stats->EncodeStats(out);
  return orb::DispatchOutcome::Ok();
}

orb::DispatchOutcome StreamService::CloseFlow(cdr::Decoder& args,
                                              cdr::Encoder& out) {
  (void)out;
  auto flow_id = args.GetULong();
  if (!flow_id.ok()) {
    return orb::DispatchOutcome::Fail(InvalidArgumentError("bad flow id"));
  }
  std::shared_ptr<Flow> flow;
  {
    MutexLock lock(mu_);
    const auto it = flows_.find(*flow_id);
    if (it == flows_.end()) {
      return orb::DispatchOutcome::Fail(NotFoundError("unknown flow id"));
    }
    flow = it->second;
    flows_.erase(it);
  }
  flow->acceptor->Close();
  if (flow->accept_thread.joinable()) flow->accept_thread.join();
  {
    MutexLock lock(flow->mu);
    if (flow->sink != nullptr) flow->sink->Stop();
  }
  return orb::DispatchOutcome::Ok();
}

// --- FlowConnection -------------------------------------------------------------

Result<std::unique_ptr<FlowConnection>> FlowConnection::Open(
    orb::Stub* control, sim::Network* net, const std::string& local_host,
    const FlowSpec& spec, const dacapo::NetworkEstimate& estimate) {
  // 1. Control-plane negotiation through the ORB.
  cdr::Encoder args = control->MakeArgsEncoder();
  spec.Encode(args);
  COOL_ASSIGN_OR_RETURN(orb::Stub::ReplyData reply,
                        control->Invoke("open_flow", args.buffer().view()));
  cdr::Decoder dec = reply.MakeDecoder();
  COOL_ASSIGN_OR_RETURN(corba::ULong flow_id, dec.GetULong());
  COOL_ASSIGN_OR_RETURN(corba::String host, dec.GetString());
  COOL_ASSIGN_OR_RETURN(corba::ULong port, dec.GetULong());

  // 2. Data-plane configuration: the flow QoS maps to a Da CaPo graph over
  //    the raw datagram service.
  dacapo::NetworkEstimate est = estimate;
  est.transport_reliable = false;
  est.typical_packet_bytes = spec.frame_bytes;
  const qos::ProtocolRequirements req =
      qos::MapToProtocolRequirements(spec.qos);
  dacapo::ConfigurationManager config;
  COOL_ASSIGN_OR_RETURN(dacapo::ConfiguredGraph graph,
                        config.Configure(req, est));

  dacapo::Connector connector(net, local_host);
  COOL_ASSIGN_OR_RETURN(
      std::unique_ptr<dacapo::Session> session,
      connector.Connect({host, static_cast<std::uint16_t>(port)},
                        FlowChannelOptions(spec, graph.spec)));

  return std::unique_ptr<FlowConnection>(
      new FlowConnection(control, flow_id, std::move(session), spec));
}

FlowConnection::~FlowConnection() { (void)Close(); }

Result<FlowStats> FlowConnection::RemoteStats() {
  cdr::Encoder args = control_->MakeArgsEncoder();
  args.PutULong(flow_id_);
  COOL_ASSIGN_OR_RETURN(orb::Stub::ReplyData reply,
                        control_->Invoke("flow_stats", args.buffer().view()));
  cdr::Decoder dec = reply.MakeDecoder();
  return FlowStats::DecodeStats(dec);
}

Status FlowConnection::Close() {
  if (closed_) return Status::Ok();
  closed_ = true;
  source_->Stop();
  cdr::Encoder args = control_->MakeArgsEncoder();
  args.PutULong(flow_id_);
  auto reply = control_->Invoke("close_flow", args.buffer().view());
  session_->Close();
  return reply.ok() ? Status::Ok() : reply.status();
}

}  // namespace cool::stream
