// The stream object adapter (paper §7: "A stream object adapter supporting
// the generated stream stubs and skeletons will be developed"), as a
// runtime building block:
//
//  * StreamService — a servant exporting the flow-control interface
//      open_flow(FlowSpec)  -> flow_id, data endpoint     (NACK -> NO_RESOURCES)
//      flow_stats(flow_id)  -> FlowStats                  (receiver-side)
//      close_flow(flow_id)  -> void
//    Flow QoS is negotiated bilaterally against the service's capability
//    and admitted against an optional resource manager; accepted flows get
//    their own Da CaPo acceptor and a measuring StreamSink.
//
//  * FlowConnection — the client side: calls open_flow through an ordinary
//    ORB stub (so the control path benefits from all of the paper's
//    machinery, including per-invocation QoS), configures a Da CaPo graph
//    for the flow QoS, connects the data session and drives a paced
//    StreamSource.
#pragma once

#include <map>
#include <memory>

#include "common/mutex.h"
#include "common/thread.h"
#include "dacapo/config_manager.h"
#include "dacapo/resource_manager.h"
#include "orb/stub.h"
#include "stream/flow.h"

namespace cool::stream {

class StreamService : public orb::Servant {
 public:
  // `flow_capability` bounds what any single flow may request (frame rate
  // and QoS translate into throughput etc.). `resources`, when given,
  // additionally enforces the aggregate budget across flows.
  StreamService(sim::Network* net, std::string host,
                dacapo::NetworkEstimate estimate,
                qos::Capability flow_capability,
                dacapo::ResourceManager* resources = nullptr);
  ~StreamService() override;

  std::string_view repository_id() const override {
    return "IDL:cool/StreamService:1.0";
  }

  orb::DispatchOutcome Dispatch(std::string_view operation,
                                cdr::Decoder& args,
                                cdr::Encoder& out) override;

  std::size_t active_flows() const;
  // Receiver-side stats, also reachable remotely via "flow_stats".
  Result<FlowStats> StatsFor(corba::ULong flow_id) const;

 private:
  struct Flow {
    FlowSpec spec;
    std::unique_ptr<dacapo::Acceptor> acceptor;
    Thread accept_thread;
    mutable Mutex mu{LockRank::kStream, "stream::StreamService::Flow::mu"};
    std::unique_ptr<StreamSink> sink
        COOL_GUARDED_BY(mu);  // set once the peer connects
    dacapo::ResourceManager::Reservation reservation;
  };

  orb::DispatchOutcome OpenFlow(cdr::Decoder& args, cdr::Encoder& out);
  orb::DispatchOutcome FlowStatsOp(cdr::Decoder& args, cdr::Encoder& out);
  orb::DispatchOutcome CloseFlow(cdr::Decoder& args, cdr::Encoder& out);

  sim::Network* net_;
  std::string host_;
  dacapo::NetworkEstimate estimate_;
  qos::Capability flow_capability_;
  dacapo::ResourceManager* resources_;

  mutable Mutex mu_{LockRank::kStream, "stream::StreamService::mu_"};
  corba::ULong next_flow_id_ COOL_GUARDED_BY(mu_) = 1;
  std::map<corba::ULong, std::shared_ptr<Flow>> flows_ COOL_GUARDED_BY(mu_);
};

// Client-side handle of one open flow.
class FlowConnection {
 public:
  // Negotiates `spec` with the remote StreamService (through `control`),
  // builds the QoS-configured data session and a paced source. The source
  // is created but not started.
  static Result<std::unique_ptr<FlowConnection>> Open(
      orb::Stub* control, sim::Network* net, const std::string& local_host,
      const FlowSpec& spec, const dacapo::NetworkEstimate& estimate);

  ~FlowConnection();

  FlowConnection(const FlowConnection&) = delete;
  FlowConnection& operator=(const FlowConnection&) = delete;

  StreamSource& source() { return *source_; }
  corba::ULong flow_id() const noexcept { return flow_id_; }
  dacapo::ModuleGraphSpec data_graph() const { return session_->graph(); }

  // Receiver-side statistics fetched through the control interface.
  Result<FlowStats> RemoteStats();

  // Stops the source and releases the server-side flow.
  Status Close();

 private:
  FlowConnection(orb::Stub* control, corba::ULong flow_id,
                 std::unique_ptr<dacapo::Session> session, FlowSpec spec)
      : control_(control),
        flow_id_(flow_id),
        session_(std::move(session)),
        source_(std::make_unique<StreamSource>(session_.get(),
                                               std::move(spec))) {}

  orb::Stub* control_;
  corba::ULong flow_id_;
  std::unique_ptr<dacapo::Session> session_;
  std::unique_ptr<StreamSource> source_;
  bool closed_ = false;
};

}  // namespace cool::stream
