// Continuous-media flows — the paper's "next step": "to extend COOL ORB
// with QoS support for multimedia streams. Support for stream interactions
// need an extended IDL to specify stream interfaces with QoS specification
// for different flows."
//
// This module implements the runtime half of that plan: a *flow* is a
// one-directional continuous-media channel with its own QoS, carried by a
// Da CaPo session configured for that QoS, while control (flow setup,
// negotiation, statistics) travels through ordinary ORB invocations — the
// OMG A/V-Streams-style split the paper cites ("the data flow takes place
// over separate channels outside the ORB core").
//
//  * StreamSource — paced frame generator (sender side).
//  * StreamSink   — receiver measuring rate, throughput, loss and delay
//                   jitter (the MULTE QoS dimensions: low latency, high
//                   throughput, controlled delay jitter).
#pragma once

#include <cstdint>
#include <vector>

#include "cdr/decoder.h"
#include "cdr/encoder.h"
#include "common/mutex.h"
#include "common/status.h"
#include "common/thread.h"
#include "dacapo/session.h"
#include "qos/qos.h"

namespace cool::stream {

// Per-flow service contract: frame clock + frame size + QoS for the
// carrying protocol.
struct FlowSpec {
  double frame_rate_hz = 25.0;
  std::size_t frame_bytes = 8 * 1024;
  qos::QoSSpec qos;

  Duration FramePeriod() const {
    return std::chrono::duration_cast<Duration>(
        std::chrono::duration<double>(1.0 / frame_rate_hz));
  }
  // Nominal media bit rate, used for admission.
  corba::ULong NominalKbps() const {
    return static_cast<corba::ULong>(frame_rate_hz *
                                     static_cast<double>(frame_bytes) * 8.0 /
                                     1000.0);
  }

  // CDR form (rides inside the ORB control operations).
  void Encode(cdr::Encoder& enc) const;
  static Result<FlowSpec> Decode(cdr::Decoder& dec);

  friend bool operator==(const FlowSpec&, const FlowSpec&) = default;
};

// Receiver-side measurements of a live flow.
struct FlowStats {
  std::uint64_t frames_received = 0;
  std::uint64_t frames_lost = 0;      // sequence gaps
  std::uint64_t frames_reordered = 0; // sequence going backwards
  double measured_fps = 0;
  double throughput_kbps = 0;
  double mean_jitter_us = 0;   // mean |inter-arrival - nominal period|
  double p95_jitter_us = 0;

  void EncodeStats(cdr::Encoder& enc) const;
  static Result<FlowStats> DecodeStats(cdr::Decoder& dec);
};

// Frame wire format: [u32 seq][payload]. Sequence numbers let the sink
// count loss/reorder independent of the carrying protocol.
inline constexpr std::size_t kFrameHeaderBytes = 4;

// Paced sender: emits `spec.frame_rate_hz` frames per second of
// `spec.frame_bytes` each over the session. Skips (counts) frames the
// session cannot absorb in time instead of drifting the clock.
class StreamSource {
 public:
  StreamSource(dacapo::Session* session, FlowSpec spec)
      : session_(session), spec_(std::move(spec)) {}
  ~StreamSource() { Stop(); }

  StreamSource(const StreamSource&) = delete;
  StreamSource& operator=(const StreamSource&) = delete;

  Status Start();
  void Stop();
  bool running() const noexcept { return running_; }

  std::uint64_t frames_sent() const { return frames_sent_.load(); }
  std::uint64_t frames_skipped() const { return frames_skipped_.load(); }

 private:
  void Run(std::stop_token stop);

  dacapo::Session* session_;
  FlowSpec spec_;
  Thread thread_;
  std::atomic<bool> running_{false};
  std::atomic<std::uint64_t> frames_sent_{0};
  std::atomic<std::uint64_t> frames_skipped_{0};
};

// Receiving end: consumes frames from the session and keeps statistics.
class StreamSink {
 public:
  explicit StreamSink(dacapo::Session* session) : session_(session) {}
  // Takes ownership of the session (server-side flows created by the
  // stream adapter own theirs).
  explicit StreamSink(std::unique_ptr<dacapo::Session> session)
      : owned_session_(std::move(session)), session_(owned_session_.get()) {}
  ~StreamSink() { Stop(); }

  StreamSink(const StreamSink&) = delete;
  StreamSink& operator=(const StreamSink&) = delete;

  Status Start();
  void Stop();

  FlowStats stats() const;

 private:
  void Run(std::stop_token stop);

  std::unique_ptr<dacapo::Session> owned_session_;
  dacapo::Session* session_;
  Thread thread_;
  std::atomic<bool> running_{false};

  mutable Mutex mu_{LockRank::kStream, "stream::StreamSink::mu_"};
  std::uint64_t frames_received_ COOL_GUARDED_BY(mu_) = 0;
  std::uint64_t frames_lost_ COOL_GUARDED_BY(mu_) = 0;
  std::uint64_t frames_reordered_ COOL_GUARDED_BY(mu_) = 0;
  std::uint64_t bytes_received_ COOL_GUARDED_BY(mu_) = 0;
  std::uint32_t next_seq_ COOL_GUARDED_BY(mu_) = 0;
  TimePoint first_rx_ COOL_GUARDED_BY(mu_){};
  TimePoint last_rx_ COOL_GUARDED_BY(mu_){};
  std::vector<double> interarrival_us_ COOL_GUARDED_BY(mu_);
};

}  // namespace cool::stream
