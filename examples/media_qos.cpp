// Distributed-multimedia scenario from the paper's motivation: a client
// fetches image frames from a remote ImageSource at negotiated QoS.
//
// Uses the chic-GENERATED stub/skeleton for examples/idl/media.idl (built
// at compile time; see examples/CMakeLists.txt). Demonstrates:
//   * per-binding QoS (setQoSParameter once),
//   * bilateral negotiation against an object with limited capability
//     (the paper's "maximum resolution" example, §4.1) — NACK, then a
//     degradable request that succeeds,
//   * per-method QoS (changing the spec between invocations).
#include <cstdio>

#include "media.h"
#include "orb/orb.h"

using namespace cool;

namespace {

// The object implementation: serves frames up to 640x480 and caps its
// deliverable throughput — requesting more yields the paper's NACK.
class FrameServer : public Media::ImageSourceSkeleton {
 public:
  qos::NegotiationResult NegotiateQoS(const qos::QoSSpec& requested) override {
    qos::Capability capability;
    capability.SetBest(qos::ParamType::kThroughputKbps, 20'000);
    capability.SetBest(qos::ParamType::kReliability, 2);
    capability.SetBest(qos::ParamType::kOrdering, 1);
    capability.SetBest(qos::ParamType::kEncryption, 1);
    capability.SetBest(qos::ParamType::kLatencyMicros, 0);
    capability.SetBest(qos::ParamType::kJitterMicros, 0);
    capability.SetBest(qos::ParamType::kLossPermille, 0);
    capability.SetBest(qos::ParamType::kPriority, 255);
    auto result = qos::Negotiate(requested, capability);
    std::printf("  [server] negotiation: %s\n",
                result.accepted
                    ? ("granted " + result.granted.ToString()).c_str()
                    : ("NACK — " + result.RejectionReason()).c_str());
    return result;
  }

  Result<std::vector<corba::Octet>> fetch_frame(
      corba::Long width, corba::Long height, Media::Format format,
      Media::FrameInfo& info) override {
    if (width > 640 || height > 480) {
      Media::NotAvailable ex;
      ex.reason = "resolution beyond sensor capability";
      RaiseException(ex);
      return std::vector<corba::Octet>{};
    }
    info.width = width;
    info.height = height;
    info.format = format;
    info.seq_no = ++seq_;
    const std::size_t bpp = format == Media::Format::GRAY8 ? 1 : 3;
    return std::vector<corba::Octet>(
        static_cast<std::size_t>(width) * static_cast<std::size_t>(height) *
            bpp,
        0x7F);
  }

  Result<corba::Long> frame_count() override { return 240; }

  Status prefetch(corba::Long count) override {
    std::printf("  [server] prefetch hint: %d frames\n", count);
    return Status::Ok();
  }

 private:
  corba::ULong seq_ = 0;
};

qos::QoSSpec Spec(std::vector<qos::QoSParameter> params) {
  auto spec = qos::QoSSpec::FromParameters(std::move(params));
  if (!spec.ok()) std::abort();
  return *spec;
}

}  // namespace

int main() {
  sim::LinkProperties link;
  link.bandwidth_bps = 90'000'000;
  link.latency = microseconds(400);
  sim::Network net(link);

  orb::ORB server(&net, "media-server");
  auto ref = server.RegisterServant("frames", std::make_shared<FrameServer>(),
                                    orb::Protocol::kDacapo);
  if (!ref.ok() || !server.Start().ok()) return 1;

  orb::ORB client(&net, "viewer");
  Media::ImageSourceStub source(&client, *ref);

  std::printf("== 1. best effort: no setQoSParameter, plain GIOP 1.0 ==\n");
  Media::FrameInfo info;
  auto frame = source.fetch_frame(320, 240, Media::Format::GRAY8, &info);
  std::printf("  fetched frame #%u: %zu bytes\n\n", info.seq_no,
              frame.ok() ? frame->size() : 0);

  std::printf(
      "== 2. per-binding QoS: reliable, encrypted, 8 Mbit/s floor ==\n");
  Status s = source.setQoSParameter(
      Spec({qos::RequireThroughputKbps(16'000, 8'000),
            qos::RequireReliability(2), qos::RequireEncryption(true)}));
  std::printf("  setQoSParameter -> %s\n", s.ToString().c_str());
  frame = source.fetch_frame(640, 480, Media::Format::RGB24, &info);
  std::printf("  fetched frame #%u at negotiated QoS: %zu bytes\n\n",
              info.seq_no, frame.ok() ? frame->size() : 0);

  std::printf("== 3. excessive request: the object NACKs (Fig. 3-i) ==\n");
  s = source.setQoSParameter(
      Spec({qos::RequireThroughputKbps(80'000, 50'000)}));
  std::printf("  setQoSParameter -> %s\n", s.ToString().c_str());
  frame = source.fetch_frame(640, 480, Media::Format::RGB24, &info);
  std::printf("  fetch under excessive QoS -> %s\n\n",
              frame.ok() ? "unexpectedly succeeded"
                         : frame.status().ToString().c_str());

  std::printf(
      "== 4. degradable request: floor within capability (Fig. 3-ii) ==\n");
  s = source.setQoSParameter(
      Spec({qos::RequireThroughputKbps(80'000, 10'000)}));
  std::printf("  setQoSParameter -> %s\n", s.ToString().c_str());
  frame = source.fetch_frame(640, 480, Media::Format::RGB24, &info);
  std::printf("  fetched frame #%u: %zu bytes (server degraded gracefully)\n\n",
              info.seq_no, frame.ok() ? frame->size() : 0);

  std::printf("== 5. user exception: resolution beyond the sensor ==\n");
  frame = source.fetch_frame(4096, 4096, Media::Format::RGB24, &info);
  std::printf("  fetch(4096x4096) -> %s\n\n",
              frame.status().ToString().c_str());

  std::printf("== 6. oneway prefetch hint ==\n");
  (void)source.prefetch(24);
  PreciseSleep(milliseconds(50));  // let the oneway land before shutdown

  server.Shutdown();
  return 0;
}
