// Quickstart: the smallest complete COOL program — a server ORB exporting
// one object, a client ORB invoking it over the simulated network, plus
// the one-line QoS twist the paper adds: stub.setQoSParameter().
//
//   $ ./examples/quickstart
#include <cstdio>

#include "orb/stub.h"

using namespace cool;

// A hand-written servant (what a Chic-generated skeleton would wrap).
class GreeterServant : public orb::Servant {
 public:
  std::string_view repository_id() const override {
    return "IDL:examples/Greeter:1.0";
  }

  orb::DispatchOutcome Dispatch(std::string_view operation,
                                cdr::Decoder& args,
                                cdr::Encoder& out) override {
    if (operation == "greet") {
      auto name = args.GetString();
      if (!name.ok()) {
        return orb::DispatchOutcome::Fail(InvalidArgumentError("bad args"));
      }
      out.PutString("Hello, " + *name + "!");
      return orb::DispatchOutcome::Ok();
    }
    return orb::DispatchOutcome::Fail(UnsupportedError("unknown operation"));
  }
};

int main() {
  // 1. A simulated network: two hosts joined by a 90 Mbit/s, 400 us link.
  sim::LinkProperties link;
  link.bandwidth_bps = 90'000'000;
  link.latency = microseconds(400);
  sim::Network net(link);

  // 2. Server side: an ORB with one registered object, listening on all
  //    three transports (TCP, IPC, Da CaPo).
  orb::ORB server(&net, "server");
  auto ref = server.RegisterServant("greeter",
                                    std::make_shared<GreeterServant>());
  if (!ref.ok() || !server.Start().ok()) {
    std::fprintf(stderr, "server setup failed\n");
    return 1;
  }
  std::printf("object reference: %s\n\n", ref->ToString().c_str());

  // 3. Client side: resolve the (stringified) reference and invoke.
  orb::ORB client(&net, "client");
  auto parsed = orb::ObjectRef::FromString(ref->ToString());
  orb::Stub stub(&client, *parsed);

  cdr::Encoder args = stub.MakeArgsEncoder();
  args.PutString("world");
  auto reply = stub.Invoke("greet", args.buffer().view());
  if (!reply.ok()) {
    std::fprintf(stderr, "invocation failed: %s\n",
                 reply.status().ToString().c_str());
    return 1;
  }
  cdr::Decoder dec = reply->MakeDecoder();
  std::printf("server said: %s\n", dec.GetString()->c_str());
  std::printf("bound over: %s (GIOP 1.0 — no QoS requested)\n\n",
              std::string(stub.bound_protocol()).c_str());

  // 4. The paper's addition: requesting QoS. Over plain TCP this fails
  //    before any byte is sent — TCP "does not implement setQoSParameter".
  auto spec = qos::QoSSpec::FromParameters({qos::RequireReliability(1)});
  const Status refused = stub.SetQoSParameter(*spec);
  std::printf("setQoSParameter over tcp -> %s\n", refused.ToString().c_str());

  // Rebinding the same object over the Da CaPo transport makes it work:
  // the QoS maps to a configured protocol graph.
  orb::Stub qos_stub(&client,
                     ref->WithProtocol(orb::Protocol::kDacapo,
                                       {"server", 7003}));
  if (Status s = qos_stub.SetQoSParameter(*spec); !s.ok()) {
    std::fprintf(stderr, "dacapo setQoSParameter failed: %s\n",
                 s.ToString().c_str());
    return 1;
  }
  cdr::Encoder args2 = qos_stub.MakeArgsEncoder();
  args2.PutString("QoS world");
  auto qos_reply = qos_stub.Invoke("greet", args2.buffer().view());
  if (!qos_reply.ok()) {
    std::fprintf(stderr, "QoS invocation failed: %s\n",
                 qos_reply.status().ToString().c_str());
    return 1;
  }
  cdr::Decoder dec2 = qos_reply->MakeDecoder();
  std::printf("server said: %s\n", dec2.GetString()->c_str());
  std::printf("bound over: %s (GIOP 9.9 — Request carried qos_params)\n",
              std::string(qos_stub.bound_protocol()).c_str());

  server.Shutdown();
  return 0;
}
