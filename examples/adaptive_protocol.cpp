// Adaptation demo: "dynamic selection, configuration and reconfiguration
// of protocol modules to ... adapt to changing service properties of the
// underlying network" (paper §1).
//
// A live Da CaPo session starts with a minimal graph on a clean link; the
// link then degrades (loss appears). The application re-runs the
// configuration manager with the *same* QoS requirements against the new
// network estimate and reconfigures the running connection — traffic
// continues over an ARQ-protected graph.
#include <cstdio>
#include <thread>

#include "dacapo/config_manager.h"
#include "dacapo/session.h"

using namespace cool;

namespace {

int Exchange(dacapo::Session& tx, dacapo::Session& rx, int count,
             const char* tag) {
  int delivered = 0;
  for (int i = 0; i < count; ++i) {
    const std::string msg = std::string(tag) + "#" + std::to_string(i);
    if (!tx.Send({reinterpret_cast<const std::uint8_t*>(msg.data()),
                  msg.size()})
             .ok()) {
      break;
    }
  }
  for (int i = 0; i < count; ++i) {
    if (rx.Receive(milliseconds(400)).ok()) ++delivered;
  }
  return delivered;
}

}  // namespace

int main() {
  sim::LinkProperties clean;
  clean.bandwidth_bps = 50'000'000;
  clean.latency = milliseconds(1);
  sim::Network net(clean);

  // Application QoS: lossless, ordered delivery.
  qos::ProtocolRequirements req;
  req.max_loss_permille = 0;
  req.need_ordering = true;

  dacapo::NetworkEstimate estimate;
  estimate.bandwidth_bps = clean.bandwidth_bps;
  estimate.rtt_us = 2000;
  estimate.loss_rate = 0.0;
  estimate.transport_reliable = false;  // datagram T service

  dacapo::ConfigurationManager config;
  auto initial = config.Configure(req, estimate);
  if (!initial.ok()) return 1;
  std::printf("phase 1 — clean link, configured graph: %s\n",
              initial->spec.ToString().c_str());

  dacapo::ChannelOptions options;
  options.transport = dacapo::ChannelOptions::Transport::kDatagram;
  options.graph = initial->spec;

  dacapo::Acceptor acceptor(&net, {"peer-b", 6600});
  if (!acceptor.Listen().ok()) return 1;
  Result<std::unique_ptr<dacapo::Session>> rx(
      Status(InternalError("unset")));
  std::thread accept_thread([&] { rx = acceptor.Accept(); });
  dacapo::Connector connector(&net, "peer-a");
  auto tx = connector.Connect({"peer-b", 6600}, options);
  accept_thread.join();
  if (!tx.ok() || !rx.ok()) return 1;

  int delivered = Exchange(**tx, **rx, 50, "clean");
  std::printf("phase 1 — delivered %d/50 messages\n\n", delivered);

  // --- the network degrades -------------------------------------------------
  sim::LinkProperties degraded = clean;
  degraded.loss_rate = 0.15;
  net.SetLink("peer-a", "peer-b", degraded);
  std::printf("phase 2 — link degrades to 15%% datagram loss\n");

  delivered = Exchange(**tx, **rx, 50, "lossy");
  std::printf("phase 2 — old graph %s: delivered %d/50 (loss leaks "
              "through)\n\n",
              (*tx)->graph().ToString().c_str(), delivered);

  // --- adapt: reconfigure against the new estimate --------------------------
  estimate.loss_rate = degraded.loss_rate;
  auto adapted = config.Configure(req, estimate);
  if (!adapted.ok()) return 1;
  std::printf("phase 3 — reconfiguring to: %s\n",
              adapted->spec.ToString().c_str());
  if (Status s = (*tx)->Reconfigure(adapted->spec); !s.ok()) {
    std::fprintf(stderr, "reconfiguration failed: %s\n",
                 s.ToString().c_str());
    return 1;
  }

  delivered = Exchange(**tx, **rx, 50, "adapted");
  std::printf("phase 3 — adapted graph: delivered %d/50 "
              "(ARQ recovers the losses)\n",
              delivered);

  (*tx)->Close();
  (*rx)->Close();
  return delivered == 50 ? 0 : 1;
}
