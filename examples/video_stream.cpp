// Multimedia streaming — the scenario the whole MULTE project aims at and
// the paper's announced next step: stream interactions with per-flow QoS.
//
// A "video server" exports a StreamService object. The viewer
//  1. negotiates a 25 fps / 16 KiB-frame flow through the ORB (control
//     path = ordinary QoS-capable CORBA invocations),
//  2. receives the media over a Da CaPo session configured from the flow
//     QoS (data path outside the ORB core, as in OMG A/V Streams),
//  3. watches receiver-side statistics (rate, throughput, loss, delay
//     jitter) through the control interface,
// first over a clean network, then over a lossy one with a reliability
// bound, showing the configured ARQ graph recovering every frame.
#include <cstdio>
#include <thread>

#include "stream/stream_adapter.h"

using namespace cool;

namespace {

qos::Capability ServerCapability() {
  qos::Capability cap;
  cap.SetBest(qos::ParamType::kThroughputKbps, 40'000);
  cap.SetBest(qos::ParamType::kReliability, 2);
  cap.SetBest(qos::ParamType::kOrdering, 1);
  cap.SetBest(qos::ParamType::kEncryption, 1);
  cap.SetBest(qos::ParamType::kLatencyMicros, 0);
  cap.SetBest(qos::ParamType::kJitterMicros, 0);
  cap.SetBest(qos::ParamType::kLossPermille, 0);
  cap.SetBest(qos::ParamType::kPriority, 255);
  return cap;
}

void PrintStats(const char* tag, const stream::FlowStats& s,
                std::uint64_t frames_sent) {
  std::printf(
      "  [%s] sent=%llu received=%llu lost=%llu | %.1f fps, %.1f Mbit/s, "
      "jitter mean=%.0f us p95=%.0f us\n",
      tag, static_cast<unsigned long long>(frames_sent),
      static_cast<unsigned long long>(s.frames_received),
      static_cast<unsigned long long>(s.frames_lost), s.measured_fps,
      s.throughput_kbps / 1000.0, s.mean_jitter_us, s.p95_jitter_us);
}

}  // namespace

int main() {
  sim::LinkProperties link;
  link.bandwidth_bps = 90'000'000;
  link.latency = microseconds(500);
  sim::Network net(link);

  dacapo::NetworkEstimate estimate;
  estimate.bandwidth_bps = link.bandwidth_bps;
  estimate.rtt_us = 1000;

  orb::ORB server(&net, "video-server");
  auto service = std::make_shared<stream::StreamService>(
      &net, "video-server", estimate, ServerCapability());
  auto ref = server.RegisterServant("tv", service);
  if (!ref.ok() || !server.Start().ok()) return 1;

  orb::ORB client(&net, "viewer");
  orb::Stub tv(&client, *ref);

  stream::FlowSpec spec;
  spec.frame_rate_hz = 25.0;
  spec.frame_bytes = 16 * 1024;  // ~3.3 Mbit/s video
  std::printf("flow request: %.0f fps x %zu KiB (%u kbit/s nominal)\n\n",
              spec.frame_rate_hz, spec.frame_bytes / 1024,
              spec.NominalKbps());

  std::printf("== phase 1: best-effort flow over a clean network ==\n");
  {
    auto flow =
        stream::FlowConnection::Open(&tv, &net, "viewer", spec, estimate);
    if (!flow.ok()) {
      std::fprintf(stderr, "open_flow failed: %s\n",
                   flow.status().ToString().c_str());
      return 1;
    }
    std::printf("  data graph: %s\n", (*flow)->data_graph().ToString().c_str());
    (void)(*flow)->source().Start();
    std::this_thread::sleep_for(seconds(2));
    (*flow)->source().Stop();
    PreciseSleep(milliseconds(150));
    auto stats = (*flow)->RemoteStats();
    if (stats.ok()) PrintStats("clean", *stats, (*flow)->source().frames_sent());
    (void)(*flow)->Close();
  }

  std::printf("\n== phase 2: same flow over a 10%%-loss network ==\n");
  sim::LinkProperties lossy = link;
  lossy.loss_rate = 0.10;
  net.SetLink("viewer", "video-server", lossy);
  {
    auto flow =
        stream::FlowConnection::Open(&tv, &net, "viewer", spec, estimate);
    if (!flow.ok()) return 1;
    std::printf("  data graph: %s (loss leaks into the picture)\n",
                (*flow)->data_graph().ToString().c_str());
    (void)(*flow)->source().Start();
    std::this_thread::sleep_for(seconds(2));
    (*flow)->source().Stop();
    PreciseSleep(milliseconds(150));
    auto stats = (*flow)->RemoteStats();
    if (stats.ok()) PrintStats("lossy", *stats, (*flow)->source().frames_sent());
    (void)(*flow)->Close();
  }

  std::printf(
      "\n== phase 3: flow with loss bound 0 — QoS configures an ARQ graph "
      "==\n");
  {
    stream::FlowSpec reliable = spec;
    reliable.qos = *qos::QoSSpec::FromParameters(
        {qos::RequireLossPermille(0, 0), qos::RequireOrdering(true)});
    dacapo::NetworkEstimate est = estimate;
    est.loss_rate = lossy.loss_rate;
    auto flow =
        stream::FlowConnection::Open(&tv, &net, "viewer", reliable, est);
    if (!flow.ok()) return 1;
    std::printf("  data graph: %s\n", (*flow)->data_graph().ToString().c_str());
    (void)(*flow)->source().Start();
    std::this_thread::sleep_for(seconds(2));
    (*flow)->source().Stop();
    PreciseSleep(milliseconds(300));
    auto stats = (*flow)->RemoteStats();
    if (stats.ok()) {
      PrintStats("reliable", *stats, (*flow)->source().frames_sent());
      std::printf(
          "  -> retransmission hides the loss (frames_lost = %llu); the\n"
          "     recovered frames arrive within an RTO, so the picture is\n"
          "     complete and steadier than the lossy phase\n",
          static_cast<unsigned long long>(stats->frames_lost));
    }
    (void)(*flow)->Close();
  }

  server.Shutdown();
  return 0;
}
