// The paper's Da CaPo bring-up workload: "Da CaPo is ported in a straight
// forward manner and tested on Chorus with a simple file transfer
// application and a throughput test application."
//
// Transfers a synthetic "file" over a raw Da CaPo session (no ORB) across
// a *lossy* datagram link, with a QoS-configured protocol graph
// (go-back-N ARQ + CRC32), and verifies the received bytes end-to-end.
#include <cstdio>
#include <thread>

#include "common/rng.h"
#include "dacapo/checksum.h"
#include "dacapo/config_manager.h"
#include "dacapo/session.h"

using namespace cool;

namespace {

std::vector<std::uint8_t> MakeFile(std::size_t bytes) {
  std::vector<std::uint8_t> data(bytes);
  Rng rng(0xF11E);
  for (auto& b : data) b = rng.NextByte();
  return data;
}

}  // namespace

int main() {
  // A long-haul link that loses 5% of datagrams.
  sim::LinkProperties link;
  link.bandwidth_bps = 20'000'000;
  link.latency = milliseconds(2);
  link.loss_rate = 0.05;
  sim::Network net(link);

  // Let the configuration manager pick the protocol from requirements:
  // lossless delivery over a lossy datagram service forces an ARQ graph.
  qos::ProtocolRequirements req;
  req.max_loss_permille = 0;
  req.need_error_detection = true;
  req.min_throughput_kbps = 2'000;

  dacapo::NetworkEstimate estimate;
  estimate.bandwidth_bps = link.bandwidth_bps;
  estimate.rtt_us = 4'000;
  estimate.loss_rate = link.loss_rate;
  estimate.transport_reliable = false;

  dacapo::ConfigurationManager config;
  auto graph = config.Configure(req, estimate);
  if (!graph.ok()) {
    std::fprintf(stderr, "no admissible configuration: %s\n",
                 graph.status().ToString().c_str());
    return 1;
  }
  std::printf("configured protocol: %s\n", graph->ToString().c_str());

  dacapo::ChannelOptions options;
  options.transport = dacapo::ChannelOptions::Transport::kDatagram;
  options.graph = graph->spec;
  options.packet_capacity = 8 * 1024;

  dacapo::Acceptor acceptor(&net, {"receiver", 6500});
  if (!acceptor.Listen().ok()) return 1;
  Result<std::unique_ptr<dacapo::Session>> rx(
      Status(InternalError("unset")));
  std::thread accept_thread([&] { rx = acceptor.Accept(); });
  dacapo::Connector connector(&net, "sender");
  auto tx = connector.Connect({"receiver", 6500}, options);
  accept_thread.join();
  if (!tx.ok() || !rx.ok()) {
    std::fprintf(stderr, "connection setup failed\n");
    return 1;
  }

  const std::vector<std::uint8_t> file = MakeFile(512 * 1024);
  const std::uint32_t checksum = dacapo::Crc32(file);
  std::printf("sending %zu KiB over a 5%%-loss link (crc32 %08x)...\n",
              file.size() / 1024, checksum);

  constexpr std::size_t kChunk = 4 * 1024;
  std::thread receiver([&] {
    std::vector<std::uint8_t> assembled;
    assembled.reserve(file.size());
    while (assembled.size() < file.size()) {
      auto chunk = (*rx)->Receive(seconds(30));
      if (!chunk.ok()) {
        std::fprintf(stderr, "receive failed: %s\n",
                     chunk.status().ToString().c_str());
        return;
      }
      assembled.insert(assembled.end(), chunk->begin(), chunk->end());
    }
    const std::uint32_t got = dacapo::Crc32(assembled);
    std::printf("received %zu KiB, crc32 %08x -> %s\n",
                assembled.size() / 1024, got,
                got == checksum ? "INTACT" : "CORRUPT");
  });

  const Stopwatch sw;
  for (std::size_t off = 0; off < file.size(); off += kChunk) {
    const std::size_t n = std::min(kChunk, file.size() - off);
    if (Status s = (*tx)->Send({file.data() + off, n}); !s.ok()) {
      std::fprintf(stderr, "send failed: %s\n", s.ToString().c_str());
      break;
    }
  }
  receiver.join();
  const double secs = sw.ElapsedSeconds();
  std::printf("effective goodput: %.1f Mbit/s (link raw: %.0f Mbit/s, "
              "lossy)\n",
              static_cast<double>(file.size()) * 8.0 / secs / 1e6,
              static_cast<double>(link.bandwidth_bps) / 1e6);

  (*tx)->Close();
  (*rx)->Close();
  return 0;
}
